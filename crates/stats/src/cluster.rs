//! Spatial clustering: DBSCAN and K-means (paper introduction, refs
//! \[18, 88\] — "kernel density estimation and K-means clustering to
//! profile road accident hotspots").
//!
//! DBSCAN uses the grid index for ε-neighbourhood queries (the same
//! fixed-radius machinery as the K-function), K-means uses k-means++
//! seeding, and [`adjusted_rand_index`] scores recovered labels against
//! generator ground truth (experiment E15).

use lsga_core::par::{par_for_each_chunk, par_map, Threads};
use lsga_core::soa::PointsSoA;
use lsga_core::Point;
use lsga_index::GridIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};

/// Points per work-stealing claim in the parallel ε-query and
/// assignment loops.
const POINT_CHUNK: usize = 512;

/// Label used for DBSCAN noise points.
pub const NOISE: i32 = -1;

/// DBSCAN output.
#[derive(Debug, Clone, PartialEq)]
pub struct DbscanResult {
    /// Per-point labels: cluster id `0..n_clusters`, or [`NOISE`].
    pub labels: Vec<i32>,
    /// Number of clusters found.
    pub n_clusters: usize,
}

/// Grid-accelerated DBSCAN with parameters `eps` (neighbourhood radius)
/// and `min_pts` (core threshold, **including** the point itself, the
/// scikit-learn convention).
pub fn dbscan(points: &[Point], eps: f64, min_pts: usize) -> DbscanResult {
    dbscan_threads(points, eps, min_pts, Threads::auto())
}

/// [`dbscan`] with an explicit [`Threads`] config. The ε-neighbourhood
/// queries (the dominant cost) run in parallel up front; the
/// density-reachability BFS then walks the precomputed lists
/// sequentially, so labels are bit-identical for every thread count.
pub fn dbscan_threads(
    points: &[Point],
    eps: f64,
    min_pts: usize,
    threads: Threads,
) -> DbscanResult {
    assert!(eps > 0.0, "eps must be positive");
    assert!(min_pts >= 1, "min_pts must be at least 1");
    let n = points.len();
    let mut labels = vec![i32::MIN; n]; // MIN = unvisited
    if n == 0 {
        return DbscanResult {
            labels,
            n_clusters: 0,
        };
    }
    let _span = lsga_obs::span("stats.dbscan");
    let index = GridIndex::build(points, eps);
    // All ε-queries up front, in parallel: each point's neighbour list
    // is independent of every other, and the BFS below consumes them in
    // exactly the order the sequential algorithm would have issued them.
    let neighbours: Vec<Vec<u32>> = par_map(n, POINT_CHUNK, threads, |i| {
        let mut nbrs = Vec::new();
        index.query_within(&points[i], eps, &mut nbrs);
        lsga_obs::add(lsga_obs::Counter::StatsNeighbors, nbrs.len() as u64);
        lsga_obs::record(lsga_obs::Hist::DbscanNeighborsPerQuery, nbrs.len() as u64);
        nbrs
    });
    let mut cluster = 0i32;
    let mut frontier: Vec<u32> = Vec::new();
    for i in 0..n {
        if labels[i] != i32::MIN {
            continue;
        }
        let nbrs = &neighbours[i];
        if nbrs.len() < min_pts {
            labels[i] = NOISE;
            continue;
        }
        // New cluster: BFS over density-reachable points.
        labels[i] = cluster;
        frontier.clear();
        frontier.extend(nbrs.iter().copied().filter(|&j| j as usize != i));
        while let Some(j) = frontier.pop() {
            let j = j as usize;
            if labels[j] == NOISE {
                labels[j] = cluster; // border point adopted
                continue;
            }
            if labels[j] != i32::MIN {
                continue;
            }
            labels[j] = cluster;
            let nbrs = &neighbours[j];
            if nbrs.len() >= min_pts {
                frontier.extend(
                    nbrs.iter()
                        .copied()
                        .filter(|&k| labels[k as usize] == i32::MIN || labels[k as usize] == NOISE),
                );
            }
        }
        cluster += 1;
    }
    DbscanResult {
        labels,
        n_clusters: cluster as usize,
    }
}

/// K-means output.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    pub centroids: Vec<Point>,
    pub labels: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations actually run.
    pub iterations: usize,
}

/// Lloyd's K-means with k-means++ seeding. Deterministic in `seed`;
/// stops on assignment convergence or after `max_iters`. Panics when
/// `k == 0` or `k > n`.
pub fn kmeans(points: &[Point], k: usize, max_iters: usize, seed: u64) -> KMeansResult {
    kmeans_threads(points, k, max_iters, seed, Threads::auto())
}

/// [`kmeans`] with an explicit [`Threads`] config. The assignment step
/// (every point against every centroid) runs in parallel over disjoint
/// label chunks; seeding and the centroid update stay sequential, so the
/// result is bit-identical for every thread count.
pub fn kmeans_threads(
    points: &[Point],
    k: usize,
    max_iters: usize,
    seed: u64,
    threads: Threads,
) -> KMeansResult {
    let n = points.len();
    assert!(k >= 1 && k <= n, "need 1 ≤ k ≤ n");
    let mut rng = StdRng::seed_from_u64(seed);
    // Columnar coordinates drive the seeding updates, the assignment
    // scan, and the inertia fold — all in input point order, so every
    // value is bit-identical to the point-at-a-time loops they replace.
    let soa = PointsSoA::from_points(points);

    // k-means++ seeding.
    let mut centroids: Vec<Point> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)]);
    let (c0x, c0y) = (centroids[0].x, centroids[0].y);
    let mut d2: Vec<f64> = soa
        .xs
        .iter()
        .zip(&soa.ys)
        .map(|(x, y)| {
            let dx = x - c0x;
            let dy = y - c0y;
            dx * dx + dy * dy
        })
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All mass collapsed (duplicates): pick any point.
            points[rng.gen_range(0..n)]
        } else {
            let mut r = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, w) in d2.iter().enumerate() {
                if r < *w {
                    pick = i;
                    break;
                }
                r -= w;
            }
            points[pick]
        };
        centroids.push(next);
        for ((d, x), y) in d2.iter_mut().zip(&soa.xs).zip(&soa.ys) {
            let dx = x - next.x;
            let dy = y - next.y;
            *d = (*d).min(dx * dx + dy * dy);
        }
    }

    let mut labels = vec![0usize; n];
    let mut iterations = 0;
    // Centroid columns, rebuilt per iteration, keep the assignment
    // scan's inner loop on two dense arrays instead of a Vec<Point>.
    let mut cxs = vec![0.0f64; k];
    let mut cys = vec![0.0f64; k];
    for iter in 0..max_iters {
        iterations = iter + 1;
        for (c, ctr) in centroids.iter().enumerate() {
            cxs[c] = ctr.x;
            cys[c] = ctr.y;
        }
        // Assignment: nearest-centroid per point over disjoint label
        // chunks. Ties break on the lowest centroid index, exactly as
        // the sequential scan would.
        let changed = AtomicBool::new(false);
        let (cxs_ref, cys_ref) = (&cxs, &cys);
        let soa_ref = &soa;
        par_for_each_chunk(&mut labels, POINT_CHUNK, threads, |start, chunk| {
            for (off, label) in chunk.iter_mut().enumerate() {
                let px = soa_ref.xs[start + off];
                let py = soa_ref.ys[start + off];
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (c, (cx, cy)) in cxs_ref.iter().zip(cys_ref).enumerate() {
                    let dx = px - cx;
                    let dy = py - cy;
                    let d = dx * dx + dy * dy;
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if *label != best {
                    *label = best;
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });
        if !changed.load(Ordering::Relaxed) && iter > 0 {
            break;
        }
        // Update.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); k];
        for ((x, y), l) in soa.xs.iter().zip(&soa.ys).zip(&labels) {
            sums[*l].0 += x;
            sums[*l].1 += y;
            sums[*l].2 += 1;
        }
        for (c, (sx, sy, cnt)) in sums.into_iter().enumerate() {
            if cnt > 0 {
                centroids[c] = Point::new(sx / cnt as f64, sy / cnt as f64);
            }
            // Empty clusters keep their centroid (k-means++ makes this
            // rare; keeping it stable preserves determinism).
        }
    }
    let inertia = soa
        .xs
        .iter()
        .zip(&soa.ys)
        .zip(&labels)
        .map(|((x, y), l)| {
            let dx = x - centroids[*l].x;
            let dy = y - centroids[*l].y;
            dx * dx + dy * dy
        })
        .sum();
    KMeansResult {
        centroids,
        labels,
        inertia,
        iterations,
    }
}

/// Adjusted Rand index between two labelings (any integer-like labels;
/// DBSCAN noise at −1 is treated as its own class). 1.0 = identical
/// partitions, ~0 = random agreement.
pub fn adjusted_rand_index(a: &[i64], b: &[i64]) -> f64 {
    assert_eq!(a.len(), b.len(), "label vectors must match");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    use std::collections::HashMap;
    let mut cont: HashMap<(i64, i64), u64> = HashMap::new();
    let mut rows: HashMap<i64, u64> = HashMap::new();
    let mut cols: HashMap<i64, u64> = HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *cont.entry((x, y)).or_insert(0) += 1;
        *rows.entry(x).or_insert(0) += 1;
        *cols.entry(y).or_insert(0) += 1;
    }
    let c2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let sum_cont: f64 = cont.values().map(|&v| c2(v)).sum();
    let sum_rows: f64 = rows.values().map(|&v| c2(v)).sum();
    let sum_cols: f64 = cols.values().map(|&v| c2(v)).sum();
    let total = c2(n as u64);
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0; // both partitions trivial
    }
    (sum_cont - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Point>, Vec<i64>) {
        let mut pts = Vec::new();
        let mut truth = Vec::new();
        for i in 0..60 {
            let f = i as f64;
            pts.push(Point::new(
                10.0 + (f * 0.77).sin() * 2.0,
                10.0 + (f * 1.31).cos() * 2.0,
            ));
            truth.push(0);
        }
        for i in 0..60 {
            let f = i as f64;
            pts.push(Point::new(
                40.0 + (f * 0.77).sin() * 2.0,
                40.0 + (f * 1.31).cos() * 2.0,
            ));
            truth.push(1);
        }
        (pts, truth)
    }

    #[test]
    fn dbscan_separates_blobs() {
        let (pts, truth) = two_blobs();
        let r = dbscan(&pts, 2.0, 4);
        assert_eq!(r.n_clusters, 2);
        let labels: Vec<i64> = r.labels.iter().map(|l| *l as i64).collect();
        assert!(adjusted_rand_index(&labels, &truth) > 0.95);
    }

    #[test]
    fn dbscan_marks_outliers_noise() {
        let (mut pts, _) = two_blobs();
        pts.push(Point::new(1000.0, 1000.0));
        let r = dbscan(&pts, 2.0, 4);
        assert_eq!(*r.labels.last().unwrap(), NOISE);
        assert_eq!(r.n_clusters, 2);
    }

    #[test]
    fn dbscan_all_noise_when_sparse() {
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect();
        let r = dbscan(&pts, 1.0, 3);
        assert_eq!(r.n_clusters, 0);
        assert!(r.labels.iter().all(|l| *l == NOISE));
    }

    #[test]
    fn dbscan_single_dense_cluster() {
        let pts = vec![Point::new(5.0, 5.0); 20];
        let r = dbscan(&pts, 0.5, 3);
        assert_eq!(r.n_clusters, 1);
        assert!(r.labels.iter().all(|l| *l == 0));
    }

    #[test]
    fn kmeans_recovers_blob_centroids() {
        let (pts, truth) = two_blobs();
        let r = kmeans(&pts, 2, 50, 3);
        let labels: Vec<i64> = r.labels.iter().map(|l| *l as i64).collect();
        assert!(adjusted_rand_index(&labels, &truth) > 0.95);
        // Centroids near (10, 10) and (40, 40) in some order.
        let mut near10 = false;
        let mut near40 = false;
        for c in &r.centroids {
            if c.dist(&Point::new(10.0, 10.0)) < 3.0 {
                near10 = true;
            }
            if c.dist(&Point::new(40.0, 40.0)) < 3.0 {
                near40 = true;
            }
        }
        assert!(near10 && near40, "{:?}", r.centroids);
        assert!(r.inertia > 0.0);
    }

    #[test]
    fn kmeans_deterministic_and_k_equals_n() {
        let (pts, _) = two_blobs();
        let a = kmeans(&pts, 3, 30, 9);
        let b = kmeans(&pts, 3, 30, 9);
        assert_eq!(a, b);
        let tiny = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let r = kmeans(&tiny, 2, 10, 0);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    #[should_panic(expected = "1 ≤ k ≤ n")]
    fn kmeans_rejects_k_over_n() {
        let _ = kmeans(&[Point::new(0.0, 0.0)], 2, 5, 0);
    }

    #[test]
    fn ari_bounds() {
        let a = vec![0i64, 0, 1, 1];
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        let relabeled = vec![5i64, 5, 9, 9];
        assert_eq!(adjusted_rand_index(&a, &relabeled), 1.0);
        let opposite = vec![0i64, 1, 0, 1];
        assert!(adjusted_rand_index(&a, &opposite) < 0.1);
    }
}
