//! Global Moran's I (paper Table 1, correlation analysis).
//!
//! `I = (n / S0) · Σ_ij w_ij·z_i·z_j / Σ_i z_i²` with `z = x − x̄`.
//! Positive I: similar values cluster spatially; negative: checkerboard
//! repulsion; `E[I] = −1/(n−1)` under the null.
//!
//! Significance is reported two ways, matching common practice (GeoDa,
//! PySAL): the analytic z-score under the normality assumption, and a
//! conditional permutation test (values shuffled over locations).

use crate::weights::SpatialWeights;
use lsga_core::par::{par_map, Threads};
use lsga_core::util::{mix_seed, normal_two_sided_p};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Permutation replicates per work-stealing claim.
pub(crate) const PERM_CHUNK: usize = 8;

/// Result of a global Moran's I analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct MoranResult {
    /// The statistic.
    pub i: f64,
    /// Null expectation `−1/(n−1)`.
    pub expected: f64,
    /// Analytic z-score under the normality assumption.
    pub z_norm: f64,
    /// Two-sided p-value for `z_norm`.
    pub p_norm: f64,
    /// Permutation z-score (None when `permutations == 0`).
    pub z_perm: Option<f64>,
    /// Pseudo p-value `(#{|I_perm| ≥ |I|} + 1) / (permutations + 1)`
    /// (None when `permutations == 0`).
    pub p_perm: Option<f64>,
}

/// Compute global Moran's I over `values` with weight matrix `w`.
/// `permutations = 0` skips the permutation test. Returns `None` when
/// `n < 3` or the values have zero variance (the statistic is undefined).
pub fn morans_i(
    values: &[f64],
    w: &SpatialWeights,
    permutations: usize,
    seed: u64,
) -> Option<MoranResult> {
    morans_i_threads(values, w, permutations, seed, Threads::auto())
}

/// [`morans_i`] with an explicit [`Threads`] config. The permutation
/// replicates run in parallel; each replicate derives its own RNG
/// stream from `(seed, replicate)`, so the result is bit-identical for
/// every thread count.
pub fn morans_i_threads(
    values: &[f64],
    w: &SpatialWeights,
    permutations: usize,
    seed: u64,
    threads: Threads,
) -> Option<MoranResult> {
    let n = values.len();
    assert_eq!(n, w.n(), "value/weight dimension mismatch");
    if n < 3 {
        return None;
    }
    let s0 = w.s0();
    if s0 == 0.0 {
        return None;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let z: Vec<f64> = values.iter().map(|x| x - mean).collect();
    let ss: f64 = z.iter().map(|v| v * v).sum();
    if ss == 0.0 {
        return None;
    }
    let _span = lsga_obs::span("stats.morans_i");
    let stat = |z: &[f64]| -> f64 {
        let mut cross = 0.0;
        let mut nnz: u64 = 0;
        for i in 0..n {
            let (cols, ws) = w.row(i);
            nnz += cols.len() as u64;
            let zi = z[i];
            for (c, wv) in cols.iter().zip(ws) {
                cross += wv * zi * z[*c as usize];
            }
        }
        lsga_obs::add(lsga_obs::Counter::StatsPairs, nnz);
        (n as f64 / s0) * (cross / ss)
    };
    let i_obs = stat(&z);
    let expected = -1.0 / (n as f64 - 1.0);

    // Analytic variance under normality (Cliff & Ord).
    let nf = n as f64;
    let s1 = w.s1();
    let s2 = w.s2();
    let var = (nf * nf * s1 - nf * s2 + 3.0 * s0 * s0) / ((nf * nf - 1.0) * s0 * s0)
        - expected * expected;
    let z_norm = if var > 0.0 {
        (i_obs - expected) / var.sqrt()
    } else {
        0.0
    };
    let p_norm = normal_two_sided_p(z_norm);

    let (z_perm, p_perm) = if permutations > 0 {
        // Each replicate owns an RNG derived from (seed, replicate), so
        // the replicate loop parallelizes with bit-identical results.
        let perms: Vec<f64> = par_map(permutations, PERM_CHUNK, threads, |k| {
            let mut rng = StdRng::seed_from_u64(mix_seed(seed, k as u64));
            let mut shuffled = z.clone();
            shuffled.shuffle(&mut rng);
            stat(&shuffled)
        });
        let mut at_least = 0usize;
        for ip in &perms {
            if (ip - expected).abs() >= (i_obs - expected).abs() - 1e-15 {
                at_least += 1;
            }
        }
        let mean_p = perms.iter().sum::<f64>() / permutations as f64;
        let var_p = perms
            .iter()
            .map(|v| (v - mean_p) * (v - mean_p))
            .sum::<f64>()
            / permutations as f64;
        let zp = if var_p > 0.0 {
            (i_obs - mean_p) / var_p.sqrt()
        } else {
            0.0
        };
        let pp = (at_least + 1) as f64 / (permutations + 1) as f64;
        (Some(zp), Some(pp))
    } else {
        (None, None)
    };

    Some(MoranResult {
        i: i_obs,
        expected,
        z_norm,
        p_norm,
        z_perm,
        p_perm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::Point;
    use rand::Rng;

    /// Points on a `k × k` lattice with rook weights.
    fn lattice_weights(k: usize) -> SpatialWeights {
        let pts: Vec<Point> = (0..k * k)
            .map(|i| Point::new((i % k) as f64, (i / k) as f64))
            .collect();
        SpatialWeights::distance_band(&pts, 1.0)
    }

    #[test]
    fn gradient_is_strongly_positive() {
        // values = x coordinate: smooth gradient -> high positive I.
        let k = 8;
        let w = lattice_weights(k);
        let values: Vec<f64> = (0..k * k).map(|i| (i % k) as f64).collect();
        let r = morans_i(&values, &w, 199, 1).unwrap();
        assert!(r.i > 0.5, "I = {}", r.i);
        assert!(r.z_norm > 3.0);
        assert!(r.p_norm < 0.01);
        assert!(r.p_perm.unwrap() < 0.02);
    }

    #[test]
    fn checkerboard_is_strongly_negative() {
        let k = 8;
        let w = lattice_weights(k);
        let values: Vec<f64> = (0..k * k)
            .map(|i| if (i % k + i / k) % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let r = morans_i(&values, &w, 199, 2).unwrap();
        assert!(r.i < -0.9, "I = {}", r.i); // perfect alternation -> −1
        assert!(r.z_norm < -3.0);
        assert!(r.p_perm.unwrap() < 0.02);
    }

    #[test]
    fn random_values_near_expectation() {
        let k = 10;
        let w = lattice_weights(k);
        // Genuinely random (seeded) values — simple arithmetic patterns
        // are themselves spatially structured on a row-major lattice.
        let mut rng = StdRng::seed_from_u64(7);
        let values: Vec<f64> = (0..k * k).map(|_| rng.gen_range(0.0..100.0)).collect();
        let r = morans_i(&values, &w, 499, 3).unwrap();
        assert!(r.i.abs() < 0.15, "I = {}", r.i);
        assert!(r.p_norm > 0.05, "p = {}", r.p_norm);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        let w = lattice_weights(3);
        assert!(morans_i(&[5.0; 9], &w, 0, 0).is_none()); // zero variance
        let w2 = lattice_weights(1);
        assert!(morans_i(&[1.0], &w2, 0, 0).is_none()); // n < 3
    }

    #[test]
    fn permutation_skipped_when_zero() {
        let w = lattice_weights(4);
        let values: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let r = morans_i(&values, &w, 0, 0).unwrap();
        assert!(r.z_perm.is_none() && r.p_perm.is_none());
    }

    #[test]
    fn deterministic_in_seed() {
        let w = lattice_weights(5);
        let values: Vec<f64> = (0..25).map(|i| ((i * 13) % 7) as f64).collect();
        let a = morans_i(&values, &w, 99, 42).unwrap();
        let b = morans_i(&values, &w, 99, 42).unwrap();
        assert_eq!(a, b);
    }
}
