//! Quadrat counting: aggregating point data onto a lattice.
//!
//! Moran's I and the General G apply to *areal* values; the standard
//! bridge from a point dataset (crime incidents, cases) is counting
//! events per grid cell. The resulting [`DensityGrid`] doubles as the
//! value vector, and the cell centres as the observation locations for
//! the weight matrix.

use lsga_core::{DensityGrid, GridSpec, Point};

/// Count the points falling in each cell of `spec` (points outside the
/// bbox are clamped onto the edge cells, matching
/// [`GridSpec::pixel_of`]).
pub fn quadrat_counts(points: &[Point], spec: GridSpec) -> DensityGrid {
    let mut grid = DensityGrid::zeros(spec);
    for p in points {
        let (ix, iy) = spec.pixel_of(p);
        grid.add(ix, iy, 1.0);
    }
    grid
}

/// Result of the classical quadrat-count chi-square test of CSR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadratTest {
    /// The chi-square statistic `Σ (observed − expected)² / expected`.
    pub chi2: f64,
    /// Degrees of freedom (`cells − 1`).
    pub dof: usize,
    /// Approximate two-sided z-score via the Wilson–Hilferty cube-root
    /// normal approximation of the chi-square distribution.
    pub z: f64,
    /// Two-sided p-value for `z`.
    pub p: f64,
}

/// Chi-square test of complete spatial randomness over quadrat counts:
/// under CSR every cell expects `n / cells` points. Large `chi2`
/// (positive `z`) indicates clustering; small (negative `z`) indicates
/// dispersion. Returns `None` for empty datasets or a single cell.
pub fn quadrat_chi2_test(points: &[Point], spec: GridSpec) -> Option<QuadratTest> {
    let cells = spec.len();
    if points.is_empty() || cells < 2 {
        return None;
    }
    let counts = quadrat_counts(points, spec);
    let expected = points.len() as f64 / cells as f64;
    let chi2: f64 = counts
        .values()
        .iter()
        .map(|c| {
            let e = c - expected;
            e * e / expected
        })
        .sum();
    let dof = cells - 1;
    // Wilson–Hilferty: (chi2/dof)^(1/3) ~ N(1 − 2/(9 dof), 2/(9 dof)).
    let k = dof as f64;
    let mean = 1.0 - 2.0 / (9.0 * k);
    let sd = (2.0 / (9.0 * k)).sqrt();
    let z = ((chi2 / k).powf(1.0 / 3.0) - mean) / sd;
    Some(QuadratTest {
        chi2,
        dof,
        z,
        p: lsga_core::util::normal_two_sided_p(z),
    })
}

/// The cell centres of a grid, row-major — the observation locations for
/// building a [`crate::SpatialWeights`] over quadrat counts.
pub fn cell_centers(spec: &GridSpec) -> Vec<Point> {
    let mut out = Vec::with_capacity(spec.len());
    for iy in 0..spec.ny {
        for ix in 0..spec.nx {
            out.push(spec.pixel_center(ix, iy));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::BBox;

    #[test]
    fn counts_partition_the_dataset() {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 10.0, 10.0), 5, 5);
        let pts: Vec<Point> = (0..100)
            .map(|i| {
                let f = i as f64;
                Point::new(5.0 + (f * 0.73).sin() * 5.0, 5.0 + (f * 1.13).cos() * 5.0)
            })
            .collect();
        let grid = quadrat_counts(&pts, spec);
        assert_eq!(grid.sum(), 100.0);
    }

    #[test]
    fn placement_is_correct() {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 4.0, 4.0), 2, 2);
        let grid = quadrat_counts(
            &[
                Point::new(1.0, 1.0),
                Point::new(3.0, 1.0),
                Point::new(1.0, 3.0),
                Point::new(3.9, 3.9),
                Point::new(4.0, 4.0), // on the max corner: clamped
            ],
            spec,
        );
        assert_eq!(grid.at(0, 0), 1.0);
        assert_eq!(grid.at(1, 0), 1.0);
        assert_eq!(grid.at(0, 1), 1.0);
        assert_eq!(grid.at(1, 1), 2.0);
    }

    #[test]
    fn chi2_separates_clustered_from_csr() {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 8, 8);
        // Clustered: everything in one corner cell.
        let clustered: Vec<Point> = (0..500)
            .map(|i| Point::new(3.0 + (i % 7) as f64, 3.0 + (i % 5) as f64))
            .collect();
        let t = quadrat_chi2_test(&clustered, spec).unwrap();
        assert!(t.z > 5.0, "z = {}", t.z);
        assert!(t.p < 0.001);
        assert_eq!(t.dof, 63);

        // Near-even spread: one point per cell -> chi2 ≈ 0, dispersed.
        let even: Vec<Point> = (0..64)
            .map(|i| Point::new((i % 8) as f64 * 12.5 + 6.0, (i / 8) as f64 * 12.5 + 6.0))
            .collect();
        let t = quadrat_chi2_test(&even, spec).unwrap();
        assert!(t.chi2 < 1.0);
        assert!(t.z < -3.0, "z = {}", t.z);
    }

    #[test]
    fn chi2_degenerate_inputs() {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 10.0, 10.0), 1, 1);
        assert!(quadrat_chi2_test(&[Point::new(1.0, 1.0)], spec).is_none());
        let spec2 = GridSpec::new(BBox::new(0.0, 0.0, 10.0, 10.0), 4, 4);
        assert!(quadrat_chi2_test(&[], spec2).is_none());
    }

    #[test]
    fn cell_centers_row_major() {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 2.0, 2.0), 2, 2);
        let c = cell_centers(&spec);
        assert_eq!(
            c,
            vec![
                Point::new(0.5, 0.5),
                Point::new(1.5, 0.5),
                Point::new(0.5, 1.5),
                Point::new(1.5, 1.5),
            ]
        );
    }
}
