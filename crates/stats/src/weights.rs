//! Sparse spatial weight matrices.
//!
//! Moran's I and the General G are defined over a weight matrix `w_ij`
//! encoding which observations are "neighbours". The two constructions
//! every surveyed package offers are the binary distance band and k-NN;
//! both produce a CSR-layout sparse matrix here.

use lsga_core::Point;
use lsga_index::KdTree;

/// A sparse spatial weight matrix in CSR layout. `w_ii = 0` always.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialWeights {
    n: usize,
    row_starts: Vec<u32>,
    cols: Vec<u32>,
    weights: Vec<f64>,
}

impl SpatialWeights {
    /// Binary distance-band weights: `w_ij = 1` iff `0 < dist ≤ radius`.
    pub fn distance_band(points: &[Point], radius: f64) -> Self {
        assert!(radius > 0.0, "radius must be positive");
        let tree = KdTree::build(points);
        let mut row_starts = Vec::with_capacity(points.len() + 1);
        let mut cols = Vec::new();
        let mut weights = Vec::new();
        row_starts.push(0u32);
        let mut buf = Vec::new();
        for (i, p) in points.iter().enumerate() {
            tree.range_query(p, radius, &mut buf);
            buf.sort_unstable();
            for &j in &buf {
                if j as usize != i {
                    cols.push(j);
                    weights.push(1.0);
                }
            }
            row_starts.push(cols.len() as u32);
        }
        SpatialWeights {
            n: points.len(),
            row_starts,
            cols,
            weights,
        }
    }

    /// k-nearest-neighbour weights: `w_ij = 1` for the `k` nearest
    /// distinct neighbours of `i` (asymmetric in general).
    pub fn knn(points: &[Point], k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        let tree = KdTree::build(points);
        let mut row_starts = Vec::with_capacity(points.len() + 1);
        let mut cols = Vec::new();
        let mut weights = Vec::new();
        row_starts.push(0u32);
        for (i, p) in points.iter().enumerate() {
            // k+1 because the query point itself is its own 0-NN.
            let mut nbrs = tree.knn(p, k + 1);
            nbrs.retain(|(j, _)| *j as usize != i);
            nbrs.truncate(k);
            nbrs.sort_by_key(|(j, _)| *j);
            for (j, _) in nbrs {
                cols.push(j);
                weights.push(1.0);
            }
            row_starts.push(cols.len() as u32);
        }
        SpatialWeights {
            n: points.len(),
            row_starts,
            cols,
            weights,
        }
    }

    /// Number of observations.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row `i` as parallel `(columns, weights)` slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let s = self.row_starts[i] as usize;
        let e = self.row_starts[i + 1] as usize;
        (&self.cols[s..e], &self.weights[s..e])
    }

    /// Number of stored (non-zero) weights.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// `S0 = Σ_ij w_ij`.
    pub fn s0(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// `S1 = ½ Σ_ij (w_ij + w_ji)²` (needed by the Moran variance).
    ///
    /// Over ordered pairs the term `(w_ij + w_ji)²` appears twice per
    /// unordered pair, so `S1` equals the sum of `t²` over unordered
    /// pairs with `t = w_ij + w_ji ≠ 0`. Each such pair is visited from
    /// row `min(i, j)` when that direction is stored, and from the other
    /// row exactly when it is not.
    pub fn s1(&self) -> f64 {
        let mut total = 0.0;
        for i in 0..self.n {
            let (cols, ws) = self.row(i);
            for (c, w) in cols.iter().zip(ws) {
                let j = *c as usize;
                if j > i {
                    let t = w + self.weight_at(j, i);
                    total += t * t;
                } else if self.weight_at(j, i) == 0.0 {
                    // Stored only in this direction: the pair was not
                    // (and will not be) seen from row j.
                    total += w * w;
                }
            }
        }
        total
    }

    /// `S2 = Σ_i (Σ_j w_ij + Σ_j w_ji)²`.
    #[allow(clippy::needless_range_loop)] // indexes rows and column sums together
    pub fn s2(&self) -> f64 {
        let mut row_sum = vec![0.0f64; self.n];
        let mut col_sum = vec![0.0f64; self.n];
        for i in 0..self.n {
            let (cols, ws) = self.row(i);
            for (c, w) in cols.iter().zip(ws) {
                row_sum[i] += w;
                col_sum[*c as usize] += w;
            }
        }
        row_sum
            .iter()
            .zip(&col_sum)
            .map(|(r, c)| {
                let t = r + c;
                t * t
            })
            .sum()
    }

    /// Weight `w_ij` (0 when not stored).
    pub fn weight_at(&self, i: usize, j: usize) -> f64 {
        let (cols, ws) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => ws[pos],
            Err(_) => 0.0,
        }
    }

    /// Row-standardize: each non-empty row rescaled to sum to 1.
    pub fn row_standardize(&mut self) {
        for i in 0..self.n {
            let s = self.row_starts[i] as usize;
            let e = self.row_starts[i + 1] as usize;
            let sum: f64 = self.weights[s..e].iter().sum();
            if sum > 0.0 {
                for w in &mut self.weights[s..e] {
                    *w /= sum;
                }
            }
        }
    }

    /// `Σ_j w_ij · x_j` for every `i` (the spatial lag).
    pub fn lag(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| {
                let (cols, ws) = self.row(i);
                cols.iter().zip(ws).map(|(c, w)| w * x[*c as usize]).sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square4() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ]
    }

    #[test]
    fn distance_band_rook_structure() {
        // radius 1: each unit-square corner has exactly its 2 rook
        // neighbours (diagonal is √2 > 1).
        let w = SpatialWeights::distance_band(&square4(), 1.0);
        assert_eq!(w.n(), 4);
        assert_eq!(w.nnz(), 8);
        for i in 0..4 {
            assert_eq!(w.row(i).0.len(), 2);
        }
        assert_eq!(w.weight_at(0, 1), 1.0);
        assert_eq!(w.weight_at(0, 3), 0.0); // diagonal
        assert_eq!(w.weight_at(0, 0), 0.0); // no self weight
        assert_eq!(w.s0(), 8.0);
    }

    #[test]
    fn knn_gives_exactly_k() {
        let pts: Vec<Point> = (0..20).map(|i| Point::new(i as f64, 0.0)).collect();
        let w = SpatialWeights::knn(&pts, 3);
        for i in 0..20 {
            assert_eq!(w.row(i).0.len(), 3, "row {i}");
            assert!(!w.row(i).0.contains(&(i as u32)));
        }
    }

    #[test]
    fn s_statistics_on_symmetric_band() {
        let w = SpatialWeights::distance_band(&square4(), 1.0);
        // Symmetric binary: S1 = ½ Σ (2)² over the 8 stored = ½·8·4 = 16.
        assert_eq!(w.s1(), 16.0);
        // Each row and column sums to 2: S2 = Σ (2+2)² = 4·16 = 64.
        assert_eq!(w.s2(), 64.0);
    }

    #[test]
    fn s1_on_asymmetric_knn() {
        // Three collinear points, k=1: 0→1, 1→0 (or 1→2 tie by index), 2→1.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.5, 0.0),
        ];
        let w = SpatialWeights::knn(&pts, 1);
        // Check against the O(n²) definition.
        let mut s1_brute = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                let t = w.weight_at(i, j) + w.weight_at(j, i);
                s1_brute += t * t;
            }
        }
        s1_brute *= 0.5;
        assert_eq!(w.s1(), s1_brute);
    }

    #[test]
    fn row_standardize_sums_to_one() {
        let mut w = SpatialWeights::distance_band(&square4(), 1.5);
        w.row_standardize();
        for i in 0..4 {
            let sum: f64 = w.row(i).1.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn lag_computes_weighted_average() {
        let mut w = SpatialWeights::distance_band(&square4(), 1.0);
        w.row_standardize();
        let x = [1.0, 2.0, 3.0, 4.0];
        let lag = w.lag(&x);
        // Corner 0 neighbours: 1 and 2 -> (2+3)/2.
        assert!((lag[0] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn isolated_point_has_empty_row() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(100.0, 0.0),
        ];
        let w = SpatialWeights::distance_band(&pts, 1.0);
        assert_eq!(w.row(2).0.len(), 0);
        let mut ws = w.clone();
        ws.row_standardize(); // must not divide by zero
        assert_eq!(ws.row(2).0.len(), 0);
    }
}
