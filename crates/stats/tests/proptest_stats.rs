//! Property tests: invariance laws of the correlation statistics and
//! clustering algorithms.

use lsga_core::Point;
use lsga_stats::{adjusted_rand_index, dbscan, kmeans, morans_i, SpatialWeights, NOISE};
use proptest::prelude::*;

fn arb_points(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Point::new(x, y)),
        min..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn morans_i_affine_invariant(
        pts in arb_points(9, 40),
        values in prop::collection::vec(0.0f64..100.0, 40),
        scale in 0.1f64..10.0,
        shift in -50.0f64..50.0,
    ) {
        let n = pts.len();
        let vals = &values[..n];
        let w = SpatialWeights::knn(&pts, 3.min(n - 1).max(1));
        if let Some(base) = morans_i(vals, &w, 0, 0) {
            let transformed: Vec<f64> = vals.iter().map(|v| v * scale + shift).collect();
            let t = morans_i(&transformed, &w, 0, 0).unwrap();
            prop_assert!((base.i - t.i).abs() < 1e-9, "{} vs {}", base.i, t.i);
            prop_assert!((base.z_norm - t.z_norm).abs() < 1e-6);
        }
    }

    #[test]
    fn dbscan_labels_well_formed(pts in arb_points(0, 80), eps in 0.5f64..30.0, min_pts in 1usize..8) {
        let r = dbscan(&pts, eps, min_pts);
        prop_assert_eq!(r.labels.len(), pts.len());
        for l in &r.labels {
            prop_assert!(*l == NOISE || (*l >= 0 && (*l as usize) < r.n_clusters));
        }
        // Every cluster id in 0..n_clusters appears at least once.
        for c in 0..r.n_clusters as i32 {
            prop_assert!(r.labels.contains(&c));
        }
        // With min_pts = 1 no point can be noise.
        if min_pts == 1 {
            prop_assert!(r.labels.iter().all(|l| *l != NOISE));
        }
    }

    #[test]
    fn kmeans_assigns_nearest_centroid(pts in arb_points(4, 60), k in 1usize..4) {
        let k = k.min(pts.len());
        let r = kmeans(&pts, k, 50, 7);
        for (p, l) in pts.iter().zip(&r.labels) {
            let my = p.dist_sq(&r.centroids[*l]);
            for c in &r.centroids {
                prop_assert!(my <= p.dist_sq(c) + 1e-9);
            }
        }
        prop_assert!(r.inertia >= 0.0);
    }

    #[test]
    fn ari_permutation_invariant(labels in prop::collection::vec(0i64..4, 2..60), relabel_seed in 0u64..100) {
        // Renaming cluster ids must not change the ARI.
        let perm = |l: i64| (l + relabel_seed as i64) % 7 + 100;
        let renamed: Vec<i64> = labels.iter().map(|l| perm(*l)).collect();
        let self_ari = adjusted_rand_index(&labels, &renamed);
        prop_assert!((self_ari - 1.0).abs() < 1e-9);
        // Symmetry.
        let other: Vec<i64> = labels.iter().rev().copied().collect();
        let ab = adjusted_rand_index(&labels, &other);
        let ba = adjusted_rand_index(&other, &labels);
        prop_assert!((ab - ba).abs() < 1e-9);
    }
}
