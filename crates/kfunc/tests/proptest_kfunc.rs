//! Property tests: K-function laws on arbitrary inputs.

use lsga_core::{Point, TimedPoint};
use lsga_kfunc::{grid_k, histogram_k_all, kd_tree_k, naive_k, st_k_grid, st_k_naive, KConfig};
use proptest::prelude::*;

fn arb_points(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point::new(x, y)),
        0..max_len,
    )
}

fn arb_timed(max_len: usize) -> impl Strategy<Value = Vec<TimedPoint>> {
    prop::collection::vec(
        (-50.0f64..50.0, -50.0f64..50.0, 0.0f64..100.0)
            .prop_map(|(x, y, t)| TimedPoint::new(x, y, t)),
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_methods_equal_naive(
        pts in arb_points(80),
        s in 0.0f64..150.0,
        include_self in any::<bool>(),
    ) {
        let cfg = KConfig { include_self };
        let want = naive_k(&pts, s, cfg);
        prop_assert_eq!(grid_k(&pts, s, cfg), want);
        prop_assert_eq!(kd_tree_k(&pts, s, cfg), want);
        if !pts.is_empty() {
            prop_assert_eq!(histogram_k_all(&pts, &[s], cfg)[0], want);
        }
    }

    #[test]
    fn k_monotone_and_bounded(pts in arb_points(60), s1 in 0.0f64..100.0, s2 in 0.0f64..100.0) {
        let cfg = KConfig::default();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let k_lo = naive_k(&pts, lo, cfg);
        let k_hi = naive_k(&pts, hi, cfg);
        prop_assert!(k_lo <= k_hi);
        let n = pts.len() as u64;
        prop_assert!(k_hi <= n.saturating_mul(n.saturating_sub(1)));
    }

    #[test]
    fn include_self_shifts_by_n(pts in arb_points(50), s in 0.0f64..100.0) {
        let excl = naive_k(&pts, s, KConfig { include_self: false });
        let incl = naive_k(&pts, s, KConfig { include_self: true });
        prop_assert_eq!(incl, excl + pts.len() as u64);
    }

    #[test]
    fn st_grid_equals_naive(
        pts in arb_timed(40),
        s in 0.5f64..80.0,
        t in 0.5f64..60.0,
    ) {
        let cfg = KConfig::default();
        prop_assert_eq!(
            st_k_grid(&pts, &[s], &[t], cfg),
            st_k_naive(&pts, &[s], &[t], cfg)
        );
    }

    #[test]
    fn st_k_bounded_by_planar_k(pts in arb_timed(40), s in 0.5f64..80.0, t in 0.5f64..60.0) {
        // The time constraint can only remove pairs.
        let cfg = KConfig::default();
        let planar: Vec<Point> = pts.iter().map(|p| p.point).collect();
        let st = st_k_grid(&pts, &[s], &[t], cfg)[0];
        let k = naive_k(&planar, s, cfg);
        prop_assert!(st <= k);
    }
}
