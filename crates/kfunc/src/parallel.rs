//! Thread-parallel K-function (parallel/distributed family, §2.3).
//!
//! Pair counting decomposes perfectly: each worker owns a block of query
//! points and counts their range sets against a shared immutable grid
//! index (the thread analogue of the GPU method of Tang et al. \[91\] and
//! the cloud method of Zhang et al. \[106\] that the paper cites). The
//! simulated-cluster version with partitioning and communication
//! accounting lives in `lsga-dist`.

use crate::KConfig;
use lsga_core::par::{par_reduce, Threads};
use lsga_core::Point;
use lsga_index::GridIndex;

/// Query points handled per work-stealing claim: large enough to
/// amortize scheduling, small enough to balance clustered data.
pub(crate) const POINT_CHUNK: usize = 1024;

/// Parallel K-function over `n_threads` workers; identical output to
/// [`crate::range_query::grid_k`].
pub fn parallel_k(points: &[Point], s: f64, cfg: KConfig, n_threads: usize) -> u64 {
    parallel_k_threads(points, s, cfg, Threads::exact(n_threads))
}

/// [`parallel_k`] with an explicit [`Threads`] config (use
/// [`Threads::auto`] to respect `LSGA_THREADS` / the machine size).
pub fn parallel_k_threads(points: &[Point], s: f64, cfg: KConfig, threads: Threads) -> u64 {
    if points.is_empty() {
        return 0;
    }
    let _span = lsga_obs::span("kfunc.parallel");
    let index = GridIndex::build(points, s.max(1e-12));
    let total = par_reduce(
        points.len(),
        POINT_CHUNK,
        threads,
        0u64,
        |range| {
            // Pair work happens inside `count_within`, accounted by the
            // index's own `index.entries_scanned` counter.
            let mut local = 0u64;
            for p in &points[range] {
                local += index.count_within(p, s) as u64;
            }
            local
        },
        |acc, part| acc + part,
    );
    if cfg.include_self {
        total
    } else {
        total - points.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_k;

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new((f * 0.831).sin() * 30.0, (f * 0.557).cos() * 30.0)
            })
            .collect()
    }

    #[test]
    fn matches_naive_for_any_thread_count() {
        let pts = scatter(300);
        let cfg = KConfig::default();
        for s in [1.0, 8.0, 50.0] {
            let want = naive_k(&pts, s, cfg);
            for threads in [1, 2, 5, 16] {
                assert_eq!(parallel_k(&pts, s, cfg, threads), want, "s={s} t={threads}");
            }
        }
    }

    #[test]
    fn include_self_convention() {
        let pts = scatter(100);
        let incl = parallel_k(&pts, 5.0, KConfig { include_self: true }, 4);
        let excl = parallel_k(
            &pts,
            5.0,
            KConfig {
                include_self: false,
            },
            4,
        );
        assert_eq!(incl, excl + 100);
    }

    #[test]
    fn empty_and_zero_threads() {
        assert_eq!(parallel_k(&[], 1.0, KConfig::default(), 4), 0);
        let pts = scatter(10);
        assert_eq!(
            parallel_k(&pts, 2.0, KConfig::default(), 0),
            naive_k(&pts, 2.0, KConfig::default())
        );
    }
}
