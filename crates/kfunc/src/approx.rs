//! Approximate and edge-corrected K-functions — the paper's §2.4
//! **future work**, implemented.
//!
//! The paper observes that Eq. 1 (KDV) and Eq. 2 (K-function) share the
//! aggregate-of-many-terms structure and proposes porting the KDV
//! approximation families to the K-function:
//!
//! * [`sampled_k`] — the data-sampling family (Eq. 7's analogue): run
//!   the K-function on a uniform subsample of size `m` and rescale the
//!   pair count by `n(n−1) / (m(m−1))`. The estimator is unbiased over
//!   the subsample draw, and its cost is independent of `n` beyond the
//!   sampling itself — turning the `O(n²)`-at-165M-points problem the
//!   paper quotes into a constant-size one.
//! * [`border_corrected_k`] — the classical border edge correction
//!   (spatstat's `"border"`): points within `s` of the window boundary
//!   are excluded as *sources* (their discs leave the window, biasing
//!   raw counts down). The corrected estimate rescales by the retained
//!   fraction, making `K̂(s)` comparable to the CSR theory `π s²`.

use crate::parallel::POINT_CHUNK;
use crate::range_query::histogram_k_all_threads;
use crate::KConfig;
use lsga_core::par::{par_reduce, Threads};
use lsga_core::{BBox, Point};
use lsga_index::GridIndex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Approximate multi-threshold K-function from a uniform subsample of
/// `sample_size` points (clamped to `n`), rescaled to the full ordered
/// pair count. Deterministic in `seed`. Self-pairs follow `cfg` scaled
/// to the *full* dataset (i.e. `+n`, not `+m`).
///
/// The estimator for the no-self-pair count is unbiased:
/// `E[ n(n−1)/(m(m−1)) · K_S(s) ] = K_P(s)` because each ordered pair
/// survives the sampling with probability `m(m−1)/(n(n−1))`.
pub fn sampled_k(
    points: &[Point],
    thresholds: &[f64],
    sample_size: usize,
    seed: u64,
    cfg: KConfig,
) -> Vec<f64> {
    sampled_k_threads(points, thresholds, sample_size, seed, cfg, Threads::auto())
}

/// [`sampled_k`] with an explicit [`Threads`] config. The subsample draw
/// is sequential (one RNG stream); the histogram pass over it is
/// parallel and identical for any thread count.
pub fn sampled_k_threads(
    points: &[Point],
    thresholds: &[f64],
    sample_size: usize,
    seed: u64,
    cfg: KConfig,
    threads: Threads,
) -> Vec<f64> {
    let n = points.len();
    if n < 2 || sample_size < 2 || thresholds.is_empty() {
        let self_term = if cfg.include_self { n as f64 } else { 0.0 };
        return vec![self_term; thresholds.len()];
    }
    let _span = lsga_obs::span("kfunc.sampled");
    let m = sample_size.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let sample: Vec<Point> = points.choose_multiple(&mut rng, m).copied().collect();
    let raw = histogram_k_all_threads(
        &sample,
        thresholds,
        KConfig {
            include_self: false,
        },
        threads,
    );
    let scale = (n as f64 * (n as f64 - 1.0)) / (m as f64 * (m as f64 - 1.0));
    let self_term = if cfg.include_self { n as f64 } else { 0.0 };
    raw.into_iter()
        .map(|k| k as f64 * scale + self_term)
        .collect()
}

/// Border-corrected Ripley's K: for each threshold `s`, count pairs
/// whose *source* point is at least `s` from the window boundary, then
/// normalize to the classical intensity scale
/// `K̂(s) = A · Σ_i∈interior |R(p_i) \ {p_i}| / (n_interior · n)`.
///
/// Under CSR this estimator is unbiased for `π s²` (up to the
/// approximation of the intensity by `n/A`), unlike the raw count which
/// loses the out-of-window disc area. Returns `(K̂(s), retained
/// sources)` per threshold.
pub fn border_corrected_k(points: &[Point], window: BBox, thresholds: &[f64]) -> Vec<(f64, usize)> {
    border_corrected_k_threads(points, window, thresholds, Threads::auto())
}

/// [`border_corrected_k`] with an explicit [`Threads`] config. For each
/// threshold the source sweep runs over parallel point chunks whose
/// integer (pair count, interior count) partials are summed in chunk
/// order, so the result is bit-identical for any thread count.
pub fn border_corrected_k_threads(
    points: &[Point],
    window: BBox,
    thresholds: &[f64],
    threads: Threads,
) -> Vec<(f64, usize)> {
    let n = points.len();
    if n == 0 || thresholds.is_empty() {
        return vec![(0.0, 0); thresholds.len()];
    }
    let _span = lsga_obs::span("kfunc.border_corrected");
    let s_max = thresholds.iter().copied().fold(0.0f64, f64::max);
    let index = GridIndex::build(points, s_max.max(1e-12));
    let area = window.area();
    let intensity_inv = area / n as f64; // A / n
    let index_ref = &index;
    thresholds
        .iter()
        .map(|&s| {
            let (pair_count, interior) = par_reduce(
                n,
                POINT_CHUNK,
                threads,
                (0u64, 0usize),
                |range| {
                    let mut pairs = 0u64;
                    let mut inner = 0usize;
                    for i in range {
                        let p = &points[i];
                        let border_dist = (p.x - window.min_x)
                            .min(window.max_x - p.x)
                            .min(p.y - window.min_y)
                            .min(window.max_y - p.y);
                        if border_dist < s {
                            continue;
                        }
                        inner += 1;
                        pairs += (index_ref.count_within(p, s) - 1) as u64; // drop self
                    }
                    (pairs, inner)
                },
                |acc, part| (acc.0 + part.0, acc.1 + part.1),
            );
            if interior == 0 {
                return (f64::NAN, 0);
            }
            // K^ = (A/n) * mean neighbours per interior source.
            let k_hat = intensity_inv * pair_count as f64 / interior as f64;
            (k_hat, interior)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_k;

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    50.0 + (f * 0.831).sin() * 48.0,
                    50.0 + (f * 0.557).cos() * 48.0,
                )
            })
            .collect()
    }

    #[test]
    fn full_sample_is_exact() {
        let pts = scatter(200);
        let ts = [5.0, 20.0, 60.0];
        let cfg = KConfig::default();
        let approx = sampled_k(&pts, &ts, 200, 7, cfg);
        for (t, a) in ts.iter().zip(&approx) {
            assert_eq!(*a, naive_k(&pts, *t, cfg) as f64);
        }
    }

    #[test]
    fn estimator_roughly_unbiased() {
        let pts = scatter(1500);
        let ts = [15.0, 40.0];
        let cfg = KConfig::default();
        let truth: Vec<f64> = ts.iter().map(|t| naive_k(&pts, *t, cfg) as f64).collect();
        let runs = 30;
        let mut mean = vec![0.0; ts.len()];
        for seed in 0..runs {
            let est = sampled_k(&pts, &ts, 300, seed, cfg);
            for (m, e) in mean.iter_mut().zip(&est) {
                *m += e / runs as f64;
            }
        }
        for (m, t) in mean.iter().zip(&truth) {
            let rel = (m - t).abs() / t;
            assert!(rel < 0.05, "bias {rel}: {m} vs {t}");
        }
    }

    #[test]
    fn error_shrinks_with_sample_size() {
        let pts = scatter(3000);
        let t = [25.0];
        let cfg = KConfig::default();
        let truth = naive_k(&pts, 25.0, cfg) as f64;
        let mean_abs_err = |m: usize| -> f64 {
            (0..10)
                .map(|seed| (sampled_k(&pts, &t, m, seed, cfg)[0] - truth).abs())
                .sum::<f64>()
                / 10.0
        };
        let coarse = mean_abs_err(100);
        let fine = mean_abs_err(1500);
        assert!(fine < coarse * 0.5, "no convergence: {coarse} -> {fine}");
    }

    #[test]
    fn include_self_uses_full_n() {
        let pts = scatter(100);
        let a = sampled_k(&pts, &[10.0], 50, 1, KConfig { include_self: true });
        let b = sampled_k(
            &pts,
            &[10.0],
            50,
            1,
            KConfig {
                include_self: false,
            },
        );
        assert_eq!(a[0], b[0] + 100.0);
    }

    #[test]
    fn degenerate_inputs() {
        let cfg = KConfig::default();
        assert_eq!(sampled_k(&[], &[1.0], 10, 0, cfg), vec![0.0]);
        let one = [Point::new(0.0, 0.0)];
        assert_eq!(sampled_k(&one, &[1.0], 10, 0, cfg), vec![0.0]);
        let pts = scatter(10);
        assert_eq!(sampled_k(&pts, &[1.0], 1, 0, cfg), vec![0.0]);
    }

    #[test]
    fn border_correction_approaches_csr_theory() {
        // Raw (uncorrected, Ripley-normalized) K underestimates pi s^2
        // under CSR; border correction removes most of the bias.
        use lsga_core::BBox;
        let window = BBox::new(0.0, 0.0, 100.0, 100.0);
        // Deterministic near-uniform points (low-discrepancy-ish).
        let pts: Vec<Point> = (0..4000)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    (f * 0.754877666).fract() * 100.0,
                    (f * 0.569840296).fract() * 100.0,
                )
            })
            .collect();
        let s = 10.0;
        let theory = std::f64::consts::PI * s * s;
        let corrected = border_corrected_k(&pts, window, &[s]);
        let (k_hat, retained) = corrected[0];
        assert!(retained > 2000);
        assert!(
            (k_hat - theory).abs() / theory < 0.05,
            "corrected {k_hat} vs theory {theory}"
        );
        // Raw estimate is biased low by the lost disc area.
        let raw = crate::ripley_normalization(
            crate::grid_k(&pts, s, KConfig::default()),
            pts.len(),
            window.area(),
        );
        assert!(raw < k_hat, "raw {raw} should underestimate {k_hat}");
    }

    #[test]
    fn border_correction_interior_shrinks_with_s() {
        use lsga_core::BBox;
        let window = BBox::new(0.0, 0.0, 100.0, 100.0);
        let pts = scatter(500);
        let out = border_corrected_k(&pts, window, &[5.0, 20.0, 45.0]);
        assert!(out[0].1 >= out[1].1);
        assert!(out[1].1 >= out[2].1);
    }
}
