//! The literal `O(n²)` K-function of paper Eq. 2.

use crate::KConfig;
use lsga_core::soa::{count_within_span, PointsSoA};
use lsga_core::Point;
use lsga_obs::{self as obs, Counter};

/// Count ordered pairs with `dist(p_i, p_j) ≤ s` by scanning all pairs.
/// Exact for every input; quadratic — the baseline every accelerated
/// method in this crate is validated against. The scan runs branch-free
/// over columnar coordinates: each source point counts its tail span
/// `i+1..` in one pass, counting unordered pairs doubled.
pub fn naive_k(points: &[Point], s: f64, cfg: KConfig) -> u64 {
    let _span = obs::span("kfunc.naive");
    let s2 = s * s;
    let soa = PointsSoA::from_points(points);
    let n = soa.len() as u64;
    let mut count = 0u64;
    for i in 0..soa.len() {
        let tail = count_within_span(soa.xs[i], soa.ys[i], &soa.xs[i + 1..], &soa.ys[i + 1..], s2);
        count += 2 * tail as u64; // ordered pairs: (i, j) and (j, i)
    }
    obs::add(Counter::KfuncPairs, n * n.saturating_sub(1) / 2);
    if cfg.include_self {
        count += points.len() as u64;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn tiny_cases() {
        let cfg = KConfig::default();
        assert_eq!(naive_k(&[], 1.0, cfg), 0);
        assert_eq!(naive_k(&[Point::new(0.0, 0.0)], 1.0, cfg), 0);
        let two = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        assert_eq!(naive_k(&two, 0.5, cfg), 0);
        assert_eq!(naive_k(&two, 1.0, cfg), 2); // inclusive at d = s
        assert_eq!(naive_k(&two, 2.0, cfg), 2);
    }

    #[test]
    fn include_self_adds_n() {
        let pts = line(10);
        let cfg_excl = KConfig {
            include_self: false,
        };
        let cfg_incl = KConfig { include_self: true };
        for s in [0.0, 1.0, 3.5, 100.0] {
            assert_eq!(naive_k(&pts, s, cfg_incl), naive_k(&pts, s, cfg_excl) + 10);
        }
    }

    #[test]
    fn line_counts_are_analytic() {
        // On a unit-spaced line, pairs within s = k are the (n-j) ordered
        // pairs at each lag j ≤ k, times 2.
        let pts = line(20);
        let cfg = KConfig::default();
        for k in 0..5u64 {
            let want: u64 = (1..=k).map(|j| 2 * (20 - j)).sum();
            assert_eq!(naive_k(&pts, k as f64, cfg), want, "s = {k}");
        }
    }

    #[test]
    fn monotone_in_s() {
        let pts: Vec<Point> = (0..50)
            .map(|i| {
                let f = i as f64;
                Point::new((f * 0.7).sin() * 10.0, (f * 1.3).cos() * 10.0)
            })
            .collect();
        let cfg = KConfig::default();
        let mut last = 0;
        for s in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0] {
            let k = naive_k(&pts, s, cfg);
            assert!(k >= last);
            last = k;
        }
        // At s covering everything: all ordered pairs.
        assert_eq!(last, 50 * 49);
    }

    #[test]
    fn coincident_points() {
        let pts = vec![Point::new(1.0, 1.0); 5];
        assert_eq!(naive_k(&pts, 0.0, KConfig::default()), 20); // 5·4
        assert_eq!(naive_k(&pts, 0.0, KConfig { include_self: true }), 25);
    }
}
