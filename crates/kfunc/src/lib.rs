//! # lsga-kfunc
//!
//! The K-function (paper Definition 2) and the K-function plot
//! (Definition 3), with the solution families of §2.3 and the two
//! variants:
//!
//! * [`naive`] — the literal `O(n²)` double loop of Eq. 2, the cost the
//!   paper calls out as infeasible at NYC-taxi scale;
//! * [`range_query`] — the range-query-based family: grid / kd-tree /
//!   ball-tree counting, plus the shared *distance-histogram* evaluation
//!   that serves all `D` thresholds of a plot in one pass;
//! * [`parallel`] — thread-parallel pair counting;
//! * [`plot`] — Monte-Carlo envelopes (`L(s)`, `U(s)` of Eq. 4–5) and the
//!   clustered / random / dispersed verdict per threshold;
//! * [`network`] — the network K-function (§2.3): shortest-path distances
//!   on a road network, naive per-event Dijkstra vs shared per-vertex
//!   Dijkstra (inspired by \[33\]);
//! * [`spatiotemporal`] — the spatiotemporal K-function (Eq. 8–10) and
//!   its 3-D plot surface (Fig. 6);
//! * [`approx`] — the paper's §2.4 *future work*, implemented: an
//!   unbiased sampling estimator of the K-function (the Eq. 7 family
//!   ported to Eq. 2) and the classical border edge correction.
//!
//! ## Pair-counting conventions
//!
//! Eq. 2 literally sums over **all ordered pairs including `i = j`**
//! (every point is within any `s ≥ 0` of itself). Off-the-shelf packages
//! (spatstat) exclude the self-pairs. [`KConfig::include_self`] selects
//! the convention; the default `false` matches spatstat and keeps the CSR
//! envelope comparisons clean, while `true` reproduces Eq. 2 verbatim —
//! the two differ by exactly `n` everywhere, which the tests assert.
//!
//! Counts are returned raw (`u64`). [`ripley_normalization`] converts to
//! the classical `K̂(s) = A·count / n²` scale when an intensity-normalized
//! value is wanted.

pub mod approx;
pub mod cross;
pub mod naive;
pub mod network;
pub mod parallel;
pub mod pcf;
pub mod plot;
pub mod range_query;
pub mod spatiotemporal;

pub use approx::{border_corrected_k, border_corrected_k_threads, sampled_k, sampled_k_threads};
pub use cross::{cross_k, cross_k_plot, cross_k_plot_threads, cross_k_threads, CrossKPlot};
pub use naive::naive_k;
pub use network::{network_k_naive, network_k_plot, network_k_shared, NetworkKPlot};
pub use parallel::{parallel_k, parallel_k_threads};
pub use pcf::{pair_correlation, PcfBin};
pub use plot::{k_function_plot, KFunctionPlot, Regime};
pub use range_query::{
    ball_tree_k, grid_k, histogram_k_all, histogram_k_all_threads, kd_tree_k, rtree_k,
};
pub use spatiotemporal::{
    st_k_grid, st_k_grid_threads, st_k_naive, st_k_plot, st_k_plot_threads, StKPlot,
};

/// Pair-counting convention (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KConfig {
    /// Count the `i = j` self-pairs (paper-literal Eq. 2). Default
    /// `false` (spatstat convention).
    pub include_self: bool,
}

/// Classical Ripley normalization `K̂(s) = A · count / n²` for a raw
/// ordered-pair count over a window of area `area`.
pub fn ripley_normalization(count: u64, n: usize, area: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    area * count as f64 / (n as f64 * n as f64)
}

/// Besag's variance-stabilizing L-function transform:
/// `L(s) − s = sqrt(K̂(s) / π) − s`, which is 0 under CSR at every
/// scale — the form most packages plot instead of the raw K curve.
pub fn l_transform(count: u64, n: usize, area: f64, s: f64) -> f64 {
    (ripley_normalization(count, n, area) / std::f64::consts::PI).sqrt() - s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_excludes_self() {
        assert!(!KConfig::default().include_self);
    }

    #[test]
    fn ripley_scale() {
        assert_eq!(ripley_normalization(100, 10, 50.0), 50.0);
        assert_eq!(ripley_normalization(0, 10, 50.0), 0.0);
        assert_eq!(ripley_normalization(5, 0, 50.0), 0.0);
    }
}
