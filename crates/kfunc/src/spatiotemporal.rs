//! Spatiotemporal K-function (paper Eq. 8) and its 3-D plot surface
//! (Eq. 9–10, Fig. 6).
//!
//! `K(s, t) = Σ_i Σ_j I(dist(p_i, p_j) ≤ s ∧ |t_i − t_j| ≤ t)`: pairs must
//! be close in space **and** time. The plot evaluates an `M × T` grid of
//! threshold combinations against envelopes from `L` uniform space–time
//! simulations — `(L+1)·M·T` naive evaluations, which is why the shared
//! 2-D histogram evaluation matters: one pass over the spatially-close
//! pairs fills the whole surface.

use crate::parallel::POINT_CHUNK;
use crate::KConfig;
use lsga_core::par::{par_map, par_reduce, Threads};
use lsga_core::{BBox, TimedPoint};
use lsga_data::uniform_timed_points;
use lsga_index::GridIndex;

/// Naive spatiotemporal K: the literal `O(M·T·n²)` evaluation of Eq. 8
/// at every threshold combination. Returns row-major `M × T` counts
/// (`out[a * T + b] = K(s_a, t_b)`).
pub fn st_k_naive(
    points: &[TimedPoint],
    s_thresholds: &[f64],
    t_thresholds: &[f64],
    cfg: KConfig,
) -> Vec<u64> {
    let m = s_thresholds.len();
    let t = t_thresholds.len();
    let mut out = vec![0u64; m * t];
    for (a, s) in s_thresholds.iter().enumerate() {
        let s2 = s * s;
        for (b, tt) in t_thresholds.iter().enumerate() {
            let mut count = 0u64;
            for (i, p) in points.iter().enumerate() {
                for (j, q) in points.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    if p.point.dist_sq(&q.point) <= s2 && (p.t - q.t).abs() <= *tt {
                        count += 1;
                    }
                }
            }
            if cfg.include_self {
                count += points.len() as u64;
            }
            out[a * t + b] = count;
        }
    }
    out
}

/// Shared spatiotemporal K: one grid-pruned pass over the pairs within
/// `max(s_thresholds)` buckets each pair into a 2-D `(s, t)` histogram;
/// a 2-D cumulative sum then yields the entire `M × T` surface. Identical
/// output to [`st_k_naive`]; cost `O(pairs(s_max) + M·T)`.
pub fn st_k_grid(
    points: &[TimedPoint],
    s_thresholds: &[f64],
    t_thresholds: &[f64],
    cfg: KConfig,
) -> Vec<u64> {
    st_k_grid_threads(points, s_thresholds, t_thresholds, cfg, Threads::auto())
}

/// [`st_k_grid`] with an explicit [`Threads`] config. The pair sweep
/// runs over parallel source-point chunks whose integer 2-D histograms
/// are summed in chunk order, so the surface is identical for any
/// thread count.
pub fn st_k_grid_threads(
    points: &[TimedPoint],
    s_thresholds: &[f64],
    t_thresholds: &[f64],
    cfg: KConfig,
    threads: Threads,
) -> Vec<u64> {
    let m = s_thresholds.len();
    let t = t_thresholds.len();
    if m == 0 || t == 0 {
        return Vec::new();
    }
    let n = points.len();
    let self_term = if cfg.include_self { n as u64 } else { 0 };
    if n == 0 {
        return vec![0; m * t];
    }
    let (s_order, s_sorted) = sort_thresholds(s_thresholds);
    let (t_order, t_sorted) = sort_thresholds(t_thresholds);
    let s_max = *s_sorted.last().unwrap();
    let s_max2 = s_max * s_max;
    let t_max = *t_sorted.last().unwrap();

    let planar: Vec<lsga_core::Point> = points.iter().map(|p| p.point).collect();
    let index = GridIndex::build(&planar, s_max.max(1e-12));
    // hist[a][b]: pairs whose first covering s-threshold is a and first
    // covering t-threshold is b (in sorted rank space).
    let s_sorted_ref = &s_sorted;
    let t_sorted_ref = &t_sorted;
    let index_ref = &index;
    let hist = par_reduce(
        n,
        POINT_CHUNK,
        threads,
        vec![0u64; m * t],
        |range| {
            let mut local = vec![0u64; m * t];
            for i in range {
                let p = &points[i];
                index_ref.for_each_candidate(&p.point, s_max, |j, q_pt| {
                    if (j as usize) > i {
                        let d2 = p.point.dist_sq(q_pt);
                        if d2 <= s_max2 {
                            let dt = (p.t - points[j as usize].t).abs();
                            if dt <= t_max {
                                let sa = s_sorted_ref.partition_point(|v| *v < d2.sqrt());
                                let tb = t_sorted_ref.partition_point(|v| *v < dt);
                                if sa < m && tb < t {
                                    local[sa * t + tb] += 2;
                                }
                            }
                        }
                    }
                });
            }
            local
        },
        |mut acc, part| {
            for (x, y) in acc.iter_mut().zip(&part) {
                *x += y;
            }
            acc
        },
    );
    // 2-D cumulative sum in sorted rank space.
    let mut cum = hist;
    for a in 0..m {
        for b in 0..t {
            let mut v = cum[a * t + b];
            if a > 0 {
                v += cum[(a - 1) * t + b];
            }
            if b > 0 {
                v += cum[a * t + b - 1];
            }
            if a > 0 && b > 0 {
                v -= cum[(a - 1) * t + b - 1];
            }
            cum[a * t + b] = v;
        }
    }
    // Un-permute to input threshold order and add the self term.
    let mut out = vec![0u64; m * t];
    for (ra, &ia) in s_order.iter().enumerate() {
        for (rb, &ib) in t_order.iter().enumerate() {
            out[ia * t + ib] = cum[ra * t + rb] + self_term;
        }
    }
    out
}

/// A spatiotemporal K-function plot surface (Fig. 6): observed `M × T`
/// counts with pointwise Monte-Carlo envelopes.
#[derive(Debug, Clone, PartialEq)]
pub struct StKPlot {
    pub s_thresholds: Vec<f64>,
    pub t_thresholds: Vec<f64>,
    /// Row-major `M × T`: `observed[a * T + b] = K(s_a, t_b)`.
    pub observed: Vec<u64>,
    pub lower: Vec<u64>,
    pub upper: Vec<u64>,
}

impl StKPlot {
    /// Observed value at `(s_a, t_b)`.
    pub fn at(&self, a: usize, b: usize) -> u64 {
        self.observed[a * self.t_thresholds.len() + b]
    }

    /// `(s, t)` combinations where the observed count exceeds the
    /// envelope — the space–time scales with meaningful clustering.
    pub fn clustered_cells(&self) -> Vec<(f64, f64)> {
        let t = self.t_thresholds.len();
        self.observed
            .iter()
            .enumerate()
            .filter(|(i, v)| **v > self.upper[*i])
            .map(|(i, _)| (self.s_thresholds[i / t], self.t_thresholds[i % t]))
            .collect()
    }
}

/// Build the Fig. 6 surface per Eq. 9–10: envelopes from `n_sims`
/// uniform space–time datasets over `window × [t_min, t_max]`.
#[allow(clippy::too_many_arguments)]
pub fn st_k_plot(
    points: &[TimedPoint],
    window: BBox,
    t_min: f64,
    t_max: f64,
    s_thresholds: &[f64],
    t_thresholds: &[f64],
    n_sims: usize,
    seed: u64,
    cfg: KConfig,
) -> StKPlot {
    st_k_plot_threads(
        points,
        window,
        t_min,
        t_max,
        s_thresholds,
        t_thresholds,
        n_sims,
        seed,
        cfg,
        Threads::auto(),
    )
}

/// [`st_k_plot`] with an explicit [`Threads`] config. Each simulation
/// is independently seeded (`seed + sim`), so the simulations run in
/// parallel with bit-identical envelopes for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn st_k_plot_threads(
    points: &[TimedPoint],
    window: BBox,
    t_min: f64,
    t_max: f64,
    s_thresholds: &[f64],
    t_thresholds: &[f64],
    n_sims: usize,
    seed: u64,
    cfg: KConfig,
    threads: Threads,
) -> StKPlot {
    assert!(n_sims >= 1);
    let observed = st_k_grid_threads(points, s_thresholds, t_thresholds, cfg, threads);
    let cells = observed.len();
    let sims: Vec<Vec<u64>> = par_map(n_sims, 1, threads, |sim| {
        let r = uniform_timed_points(
            points.len(),
            window,
            t_min,
            t_max,
            seed.wrapping_add(sim as u64),
        );
        // The simulations already occupy the pool: count sequentially.
        st_k_grid_threads(&r, s_thresholds, t_thresholds, cfg, Threads::exact(1))
    });
    let mut lower = vec![u64::MAX; cells];
    let mut upper = vec![0u64; cells];
    for ks in &sims {
        for (i, v) in ks.iter().enumerate() {
            lower[i] = lower[i].min(*v);
            upper[i] = upper[i].max(*v);
        }
    }
    StKPlot {
        s_thresholds: s_thresholds.to_vec(),
        t_thresholds: t_thresholds.to_vec(),
        observed,
        lower,
        upper,
    }
}

fn sort_thresholds(thresholds: &[f64]) -> (Vec<usize>, Vec<f64>) {
    let mut order: Vec<usize> = (0..thresholds.len()).collect();
    order.sort_by(|a, b| thresholds[*a].total_cmp(&thresholds[*b]));
    let sorted = order.iter().map(|&i| thresholds[i]).collect();
    (order, sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::Point;
    use lsga_data::{epidemic_waves, Hotspot, Wave};

    fn window() -> BBox {
        BBox::new(0.0, 0.0, 100.0, 100.0)
    }

    fn wave_data(n: usize) -> Vec<TimedPoint> {
        epidemic_waves(
            n,
            &[
                Wave {
                    hotspot: Hotspot {
                        center: Point::new(25.0, 25.0),
                        sigma: 3.0,
                        weight: 1.0,
                    },
                    t_peak: 10.0,
                    t_sigma: 2.0,
                },
                Wave {
                    hotspot: Hotspot {
                        center: Point::new(75.0, 75.0),
                        sigma: 3.0,
                        weight: 1.0,
                    },
                    t_peak: 40.0,
                    t_sigma: 2.0,
                },
            ],
            window(),
            13,
        )
    }

    #[test]
    fn grid_equals_naive() {
        let pts = wave_data(120);
        let ss = [2.0, 5.0, 12.0];
        let ts = [1.0, 4.0, 20.0];
        for cfg in [
            KConfig {
                include_self: false,
            },
            KConfig { include_self: true },
        ] {
            assert_eq!(
                st_k_grid(&pts, &ss, &ts, cfg),
                st_k_naive(&pts, &ss, &ts, cfg)
            );
        }
    }

    #[test]
    fn grid_handles_unsorted_thresholds() {
        let pts = wave_data(80);
        let cfg = KConfig::default();
        let a = st_k_grid(&pts, &[12.0, 2.0], &[20.0, 1.0], cfg);
        let b = st_k_naive(&pts, &[12.0, 2.0], &[20.0, 1.0], cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn surface_monotone_in_both_axes() {
        let pts = wave_data(150);
        let ss: Vec<f64> = (1..=5).map(|i| i as f64 * 3.0).collect();
        let ts: Vec<f64> = (1..=4).map(|i| i as f64 * 5.0).collect();
        let surf = st_k_grid(&pts, &ss, &ts, KConfig::default());
        let t = ts.len();
        for a in 0..ss.len() {
            for b in 0..t {
                if a > 0 {
                    assert!(surf[a * t + b] >= surf[(a - 1) * t + b]);
                }
                if b > 0 {
                    assert!(surf[a * t + b] >= surf[a * t + b - 1]);
                }
            }
        }
    }

    #[test]
    fn spacetime_clustering_detected() {
        let pts = wave_data(300);
        let plot = st_k_plot(
            &pts,
            window(),
            0.0,
            50.0,
            &[3.0, 6.0, 10.0],
            &[2.0, 5.0, 10.0],
            15,
            7,
            KConfig::default(),
        );
        assert!(!plot.clustered_cells().is_empty());
        assert!(plot.at(2, 2) >= plot.at(0, 0));
    }

    #[test]
    fn uniform_spacetime_within_envelope() {
        let pts = uniform_timed_points(200, window(), 0.0, 50.0, 314);
        let plot = st_k_plot(
            &pts,
            window(),
            0.0,
            50.0,
            &[5.0, 10.0],
            &[5.0, 15.0],
            30,
            15,
            KConfig::default(),
        );
        let inside = plot
            .observed
            .iter()
            .enumerate()
            .filter(|(i, v)| **v >= plot.lower[*i] && **v <= plot.upper[*i])
            .count();
        assert!(inside >= 3, "observed {:?}", plot.observed);
    }

    #[test]
    fn purely_spatial_limit_matches_planar_k() {
        // With t threshold covering the whole time range, the ST K at
        // (s, t_max) equals the planar K at s.
        let pts = wave_data(100);
        let planar: Vec<Point> = pts.iter().map(|p| p.point).collect();
        let cfg = KConfig::default();
        let st = st_k_grid(&pts, &[8.0], &[1e9], cfg);
        let k = crate::naive::naive_k(&planar, 8.0, cfg);
        assert_eq!(st[0], k);
    }

    #[test]
    fn empty_inputs() {
        let cfg = KConfig::default();
        assert_eq!(st_k_grid(&[], &[1.0], &[1.0], cfg), vec![0]);
        assert!(st_k_grid(&wave_data(5), &[], &[1.0], cfg).is_empty());
    }
}
