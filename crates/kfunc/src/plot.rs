//! The K-function plot (paper Definition 3, Fig. 2): observed `K_P(s_d)`
//! against the Monte-Carlo envelope `[L(s_d), U(s_d)]` of `L` CSR
//! simulations, with a clustered / random / dispersed verdict per
//! threshold.

use crate::range_query::{histogram_k_all, histogram_k_all_threads};
use crate::KConfig;
use lsga_core::par::{par_map, Threads};
use lsga_core::BBox;
use lsga_data::uniform_points;

/// Verdict of an observed K value against the simulation envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// `K_P(s) > U(s)`: statistically meaningful clustering (the paper's
    /// criterion for meaningful hotspots at this scale).
    Clustered,
    /// Within the envelope: indistinguishable from CSR.
    Random,
    /// `K_P(s) < L(s)`: dispersion / inhibition.
    Dispersed,
}

/// A computed K-function plot (the data behind Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct KFunctionPlot {
    /// The spatial thresholds `s_1 … s_D`, in the order given.
    pub thresholds: Vec<f64>,
    /// Observed `K_P(s_d)` (raw ordered-pair counts).
    pub observed: Vec<u64>,
    /// Envelope lower bound `L(s_d)` = min over the `L` simulations.
    pub lower: Vec<u64>,
    /// Envelope upper bound `U(s_d)` = max over the simulations.
    pub upper: Vec<u64>,
}

impl KFunctionPlot {
    /// Per-threshold verdicts.
    pub fn regimes(&self) -> Vec<Regime> {
        self.observed
            .iter()
            .zip(self.lower.iter().zip(&self.upper))
            .map(|(obs, (lo, hi))| {
                if obs > hi {
                    Regime::Clustered
                } else if obs < lo {
                    Regime::Dispersed
                } else {
                    Regime::Random
                }
            })
            .collect()
    }

    /// Besag L-transform of the observed curve: `L(s) − s` per
    /// threshold, ~0 under CSR (see [`crate::l_transform`]).
    pub fn l_curve(&self, n: usize, area: f64) -> Vec<f64> {
        self.thresholds
            .iter()
            .zip(&self.observed)
            .map(|(s, k)| crate::l_transform(*k, n, area, *s))
            .collect()
    }

    /// The thresholds judged [`Regime::Clustered`] — the scale range the
    /// paper suggests feeding back into the KDV bandwidth (§2.1).
    pub fn clustered_thresholds(&self) -> Vec<f64> {
        self.thresholds
            .iter()
            .zip(self.regimes())
            .filter(|(_, r)| *r == Regime::Clustered)
            .map(|(t, _)| *t)
            .collect()
    }
}

/// Build a K-function plot per Definition 3.
///
/// Computes `K_P(s_d)` for the observed `points`, simulates `n_sims`
/// CSR datasets of the same size in `window`, and takes the pointwise
/// min/max as the envelope. Simulations run on `n_threads` workers
/// (each simulation is an independent histogram pass). Deterministic in
/// `seed`.
pub fn k_function_plot(
    points: &[lsga_core::Point],
    window: BBox,
    thresholds: &[f64],
    n_sims: usize,
    seed: u64,
    cfg: KConfig,
    n_threads: usize,
) -> KFunctionPlot {
    assert!(n_sims >= 1, "need at least one simulation");
    assert!(!thresholds.is_empty(), "need at least one threshold");
    let observed = histogram_k_all(points, thresholds, cfg);
    let n = points.len();

    // Each simulation is independently seeded (`seed + sim`), so results
    // do not depend on which worker runs which simulation.
    let sim_results: Vec<Vec<u64>> = par_map(n_sims, 1, Threads::exact(n_threads), |sim| {
        let r = uniform_points(n, window, seed.wrapping_add(sim as u64));
        // The simulations already occupy the pool: count sequentially.
        histogram_k_all_threads(&r, thresholds, cfg, Threads::exact(1))
    });

    let d = thresholds.len();
    let mut lower = vec![u64::MAX; d];
    let mut upper = vec![0u64; d];
    for sim in &sim_results {
        for (i, v) in sim.iter().enumerate() {
            lower[i] = lower[i].min(*v);
            upper[i] = upper[i].max(*v);
        }
    }
    KFunctionPlot {
        thresholds: thresholds.to_vec(),
        observed,
        lower,
        upper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::Point;
    use lsga_data::{gaussian_mixture, hardcore_points, Hotspot};

    fn window() -> BBox {
        BBox::new(0.0, 0.0, 100.0, 100.0)
    }

    fn thresholds() -> Vec<f64> {
        (1..=10).map(|i| i as f64).collect()
    }

    #[test]
    fn clustered_data_exceeds_envelope() {
        let hs = [
            Hotspot {
                center: Point::new(30.0, 30.0),
                sigma: 2.5,
                weight: 1.0,
            },
            Hotspot {
                center: Point::new(70.0, 60.0),
                sigma: 2.5,
                weight: 1.0,
            },
        ];
        let pts = gaussian_mixture(400, &hs, window(), 5);
        let plot = k_function_plot(&pts, window(), &thresholds(), 20, 99, KConfig::default(), 4);
        let regimes = plot.regimes();
        // At small-to-medium scales the clustering must be detected.
        assert!(
            regimes[..6].iter().all(|r| *r == Regime::Clustered),
            "{regimes:?}"
        );
        assert!(!plot.clustered_thresholds().is_empty());
    }

    #[test]
    fn csr_data_stays_inside_envelope_mostly() {
        let pts = lsga_data::uniform_points(400, window(), 1234);
        let plot = k_function_plot(
            &pts,
            window(),
            &thresholds(),
            40,
            4321,
            KConfig::default(),
            4,
        );
        let random = plot
            .regimes()
            .iter()
            .filter(|r| **r == Regime::Random)
            .count();
        // With 40 simulations the envelope is wide; allow one excursion.
        assert!(random >= thresholds().len() - 1, "{:?}", plot.regimes());
    }

    #[test]
    fn dispersed_data_falls_below_envelope() {
        let pts = hardcore_points(350, 4.5, window(), 7);
        assert!(pts.len() > 300);
        let plot = k_function_plot(&pts, window(), &thresholds(), 20, 55, KConfig::default(), 4);
        let regimes = plot.regimes();
        // Below the hard-core distance the observed K is ~0 while CSR
        // envelopes are positive.
        assert_eq!(regimes[1], Regime::Dispersed, "{regimes:?}"); // s = 2
        assert_eq!(regimes[3], Regime::Dispersed, "{regimes:?}"); // s = 4
    }

    #[test]
    fn deterministic_in_seed_and_thread_count() {
        let pts = lsga_data::uniform_points(150, window(), 3);
        let a = k_function_plot(&pts, window(), &thresholds(), 8, 10, KConfig::default(), 1);
        let b = k_function_plot(&pts, window(), &thresholds(), 8, 10, KConfig::default(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn l_curve_near_zero_under_csr_positive_when_clustered() {
        let csr = lsga_data::uniform_points(2000, window(), 77);
        let thresholds = [5.0, 10.0];
        let plot = k_function_plot(&csr, window(), &thresholds, 5, 1, KConfig::default(), 2);
        for l in plot.l_curve(2000, window().area()) {
            assert!(l.abs() < 1.5, "CSR L-s = {l}");
        }
        let clustered = gaussian_mixture(
            2000,
            &[Hotspot {
                center: Point::new(50.0, 50.0),
                sigma: 3.0,
                weight: 1.0,
            }],
            window(),
            3,
        );
        let plot = k_function_plot(
            &clustered,
            window(),
            &thresholds,
            5,
            2,
            KConfig::default(),
            2,
        );
        for l in plot.l_curve(2000, window().area()) {
            assert!(l > 3.0, "clustered L-s = {l}");
        }
    }

    #[test]
    fn envelope_ordering_invariant() {
        let pts = lsga_data::uniform_points(200, window(), 8);
        let plot = k_function_plot(&pts, window(), &thresholds(), 10, 2, KConfig::default(), 2);
        for i in 0..plot.thresholds.len() {
            assert!(plot.lower[i] <= plot.upper[i]);
        }
    }
}
