//! The pair correlation function `g(r)` — the K-function's derivative
//! form, the standard companion second-order statistic (spatstat's
//! `pcf`).
//!
//! Where `K(s)` is cumulative (pairs within `s`), `g(r)` is the density
//! of pairs *at* distance `r`, normalized so CSR gives `g ≡ 1`:
//! `ĝ(r) = A · (pairs with distance in [r, r+Δ)) / (n² · 2πr·Δ)`.
//! Values above 1 indicate clustering at exactly that scale and below 1
//! inhibition — sharper diagnostics than the cumulative K when patterns
//! mix scales.

use lsga_core::{BBox, Point};
use lsga_index::GridIndex;

/// One bin of an estimated pair correlation function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcfBin {
    /// Bin centre radius.
    pub r: f64,
    /// Estimated `g(r)` (1 under CSR).
    pub g: f64,
    /// Ordered pairs contributing to the bin.
    pub pairs: u64,
}

/// Estimate the pair correlation function over `n_bins` equal-width
/// rings up to `max_r`, for points observed in `window` (used for the
/// intensity normalization; no edge correction — expect a mild downward
/// bias within `max_r` of the boundary, as with the raw K).
pub fn pair_correlation(points: &[Point], window: BBox, max_r: f64, n_bins: usize) -> Vec<PcfBin> {
    assert!(max_r > 0.0, "max_r must be positive");
    assert!(n_bins >= 1, "need at least one bin");
    let n = points.len();
    let mut hist = vec![0u64; n_bins];
    if n >= 2 {
        let width = max_r / n_bins as f64;
        let index = GridIndex::build(points, max_r.max(1e-12));
        let max_r2 = max_r * max_r;
        for (i, p) in points.iter().enumerate() {
            index.for_each_candidate(p, max_r, |j, q| {
                if (j as usize) > i {
                    let d2 = p.dist_sq(q);
                    if d2 < max_r2 && d2 > 0.0 {
                        let bin = ((d2.sqrt() / width) as usize).min(n_bins - 1);
                        hist[bin] += 2;
                    }
                }
            });
        }
    }
    let width = max_r / n_bins as f64;
    let area = window.area();
    let nf = n as f64;
    (0..n_bins)
        .map(|b| {
            let r = (b as f64 + 0.5) * width;
            let ring_area = std::f64::consts::TAU * r * width;
            let g = if n >= 2 && ring_area > 0.0 {
                area * hist[b] as f64 / (nf * nf * ring_area)
            } else {
                0.0
            };
            PcfBin {
                r,
                g,
                pairs: hist[b],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> BBox {
        BBox::new(0.0, 0.0, 100.0, 100.0)
    }

    /// Seeded CSR points (a deterministic lattice-like sequence would
    /// itself have structured pair distances, which is exactly what the
    /// pcf detects).
    fn quasi_uniform(n: usize) -> Vec<Point> {
        lsga_data::uniform_points(n, window(), 99)
    }

    #[test]
    fn csr_gives_g_near_one() {
        let pts = quasi_uniform(5000);
        let pcf = pair_correlation(&pts, window(), 10.0, 10);
        // Interior bins (skip the smallest ring, which is noisy).
        for bin in &pcf[1..] {
            assert!(
                (bin.g - 1.0).abs() < 0.15,
                "g({}) = {} (pairs {})",
                bin.r,
                bin.g,
                bin.pairs
            );
        }
    }

    #[test]
    fn clustered_data_peaks_at_short_range() {
        // Tight pairs: every point duplicated at distance 0.5, landing
        // in the first ring where the CSR expectation is smallest.
        let mut pts = quasi_uniform(800);
        let shifted: Vec<Point> = pts.iter().map(|p| Point::new(p.x + 0.5, p.y)).collect();
        pts.extend(shifted);
        let pcf = pair_correlation(&pts, window(), 10.0, 10);
        let short = pcf[0].g; // covers [0, 1): all planted pairs
        let long = pcf[8].g;
        assert!(short > 2.0 * long, "short {short} vs long {long}");
        // And the long-range behaviour still normalizes near 1.
        assert!((long - 1.0).abs() < 0.3, "long {long}");
    }

    #[test]
    fn hardcore_data_suppresses_short_range() {
        let pts = lsga_data::hardcore_points(1500, 3.0, window(), 3);
        let pcf = pair_correlation(&pts, window(), 9.0, 9);
        // Bins entirely below the hard-core distance are empty.
        assert_eq!(pcf[0].pairs, 0); // [0, 1)
        assert_eq!(pcf[1].pairs, 0); // [1, 2)
        assert!(pcf[7].g > 0.5);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(pair_correlation(&[], window(), 5.0, 4)
            .iter()
            .all(|b| b.g == 0.0 && b.pairs == 0));
        let one = [Point::new(1.0, 1.0)];
        assert!(pair_correlation(&one, window(), 5.0, 4)
            .iter()
            .all(|b| b.pairs == 0));
    }

    #[test]
    fn pcf_integrates_back_to_k() {
        // K(s) = 2π ∫₀ˢ g(r)·r dr · intensity-normalization; with our
        // estimators the identity reduces to: Σ pairs over bins below s
        // equals the histogram K count.
        let pts = quasi_uniform(2000);
        let max_r = 8.0;
        let pcf = pair_correlation(&pts, window(), max_r, 8);
        let total_pairs: u64 = pcf.iter().map(|b| b.pairs).sum();
        let k = crate::naive_k(&pts, max_r, crate::KConfig::default());
        // pcf uses strict < max_r; allow the boundary pairs to differ.
        assert!(
            total_pairs <= k && k - total_pairs <= 8,
            "pcf pairs {total_pairs} vs K {k}"
        );
    }
}
