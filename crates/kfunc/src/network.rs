//! Network K-function (paper §2.3; Okabe & Yamada \[74\]).
//!
//! `K_P(s) = Σ_i Σ_j I(dist_G(p_i, p_j) ≤ s)` over shortest-path
//! distances on a road network. Two implementations with identical
//! output:
//!
//! * [`network_k_naive`] — one bounded Dijkstra **per event** (the cost
//!   the fast methods \[33, 81\] attack);
//! * [`network_k_shared`] — one bounded Dijkstra **per distinct endpoint
//!   vertex of an occupied edge**: events sharing an edge reuse the same
//!   two searches, and every pairwise distance is then an `O(1)`
//!   combination of endpoint distances and offsets. With `m` occupied
//!   edges and `n` events this needs `≤ 2m` searches instead of `n` — the
//!   sharing idea of Chan et al. \[33\].
//!
//! Both evaluate **all thresholds at once** via the distance histogram,
//! like the planar [`crate::range_query::histogram_k_all`].

use crate::KConfig;
use lsga_network::{DijkstraEngine, EdgePosition, RoadNetwork, VertexId};

/// Network K-function by per-event bounded Dijkstra. Returns one count
/// per threshold (input order preserved).
pub fn network_k_naive(
    net: &RoadNetwork,
    events: &[EdgePosition],
    thresholds: &[f64],
    cfg: KConfig,
) -> Vec<u64> {
    let (order, sorted) = sort_thresholds(thresholds);
    if events.is_empty() || thresholds.is_empty() {
        return vec![0; thresholds.len()];
    }
    let s_max = *sorted.last().unwrap();
    let mut engine = DijkstraEngine::new(net);
    let mut hist = vec![0u64; sorted.len()];
    for (i, a) in events.iter().enumerate() {
        let ea = net.edge(a.edge);
        engine.run(&[(ea.u, a.to_u()), (ea.v, a.to_v(net))], s_max);
        for (j, b) in events.iter().enumerate() {
            if i == j {
                continue;
            }
            let eb = net.edge(b.edge);
            let mut d = f64::INFINITY;
            if let Some(du) = engine.dist(eb.u) {
                d = d.min(du + b.to_u());
            }
            if let Some(dv) = engine.dist(eb.v) {
                d = d.min(dv + b.to_v(net));
            }
            if a.edge == b.edge {
                d = d.min((a.offset - b.offset).abs());
            }
            if d <= s_max {
                let bucket = sorted.partition_point(|t| *t < d);
                if bucket < hist.len() {
                    hist[bucket] += 1;
                }
            }
        }
    }
    finish(hist, &order, events.len(), cfg)
}

/// Network K-function sharing Dijkstras across events on the same edge.
/// Identical output to [`network_k_naive`].
pub fn network_k_shared(
    net: &RoadNetwork,
    events: &[EdgePosition],
    thresholds: &[f64],
    cfg: KConfig,
) -> Vec<u64> {
    let (order, sorted) = sort_thresholds(thresholds);
    if events.is_empty() || thresholds.is_empty() {
        return vec![0; thresholds.len()];
    }
    let s_max = *sorted.last().unwrap();

    // Distinct endpoint vertices of occupied edges.
    let mut vs: Vec<VertexId> = Vec::new();
    let mut slot_of = std::collections::HashMap::new();
    for ev in events {
        let e = net.edge(ev.edge);
        for v in [e.u, e.v] {
            slot_of.entry(v).or_insert_with(|| {
                vs.push(v);
                vs.len() - 1
            });
        }
    }

    // Bounded all-pairs distances among the occupied endpoints:
    // one Dijkstra per distinct endpoint.
    let m = vs.len();
    let mut dmat = vec![f64::INFINITY; m * m];
    let mut engine = DijkstraEngine::new(net);
    for (si, &v) in vs.iter().enumerate() {
        engine.run(&[(v, 0.0)], s_max);
        for (sj, &w) in vs.iter().enumerate() {
            if let Some(d) = engine.dist(w) {
                dmat[si * m + sj] = d;
            }
        }
    }

    // Event endpoint slots and offsets, precomputed once.
    let prepared: Vec<(usize, usize, f64, f64)> = events
        .iter()
        .map(|ev| {
            let e = net.edge(ev.edge);
            (slot_of[&e.u], slot_of[&e.v], ev.to_u(), ev.to_v(net))
        })
        .collect();

    let mut hist = vec![0u64; sorted.len()];
    for i in 0..events.len() {
        let (iu, iv, iou, iov) = prepared[i];
        for j in (i + 1)..events.len() {
            let (ju, jv, jou, jov) = prepared[j];
            let mut d = (iou + dmat[iu * m + ju] + jou)
                .min(iou + dmat[iu * m + jv] + jov)
                .min(iov + dmat[iv * m + ju] + jou)
                .min(iov + dmat[iv * m + jv] + jov);
            if events[i].edge == events[j].edge {
                d = d.min((events[i].offset - events[j].offset).abs());
            }
            if d <= s_max {
                let bucket = sorted.partition_point(|t| *t < d);
                if bucket < hist.len() {
                    hist[bucket] += 2; // unordered pair -> two ordered
                }
            }
        }
    }
    finish(hist, &order, events.len(), cfg)
}

/// A network K-function plot: observed counts with a Monte-Carlo envelope
/// from length-uniform random events on the same network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkKPlot {
    pub thresholds: Vec<f64>,
    pub observed: Vec<u64>,
    pub lower: Vec<u64>,
    pub upper: Vec<u64>,
}

impl NetworkKPlot {
    /// Thresholds where the observed count exceeds the envelope maximum.
    pub fn clustered_thresholds(&self) -> Vec<f64> {
        self.thresholds
            .iter()
            .enumerate()
            .filter(|(i, _)| self.observed[*i] > self.upper[*i])
            .map(|(_, t)| *t)
            .collect()
    }
}

/// Build a network K-function plot (Definition 3 adapted to networks:
/// the null model is uniform-by-length on the same graph).
pub fn network_k_plot(
    net: &RoadNetwork,
    events: &[EdgePosition],
    thresholds: &[f64],
    n_sims: usize,
    seed: u64,
    cfg: KConfig,
) -> NetworkKPlot {
    assert!(n_sims >= 1);
    let observed = network_k_shared(net, events, thresholds, cfg);
    let mut lower = vec![u64::MAX; thresholds.len()];
    let mut upper = vec![0u64; thresholds.len()];
    for sim in 0..n_sims {
        let r = lsga_network::sample_on_network(net, events.len(), seed.wrapping_add(sim as u64));
        let ks = network_k_shared(net, &r, thresholds, cfg);
        for (i, v) in ks.iter().enumerate() {
            lower[i] = lower[i].min(*v);
            upper[i] = upper[i].max(*v);
        }
    }
    NetworkKPlot {
        thresholds: thresholds.to_vec(),
        observed,
        lower,
        upper,
    }
}

fn sort_thresholds(thresholds: &[f64]) -> (Vec<usize>, Vec<f64>) {
    let mut order: Vec<usize> = (0..thresholds.len()).collect();
    order.sort_by(|a, b| thresholds[*a].total_cmp(&thresholds[*b]));
    let sorted = order.iter().map(|&i| thresholds[i]).collect();
    (order, sorted)
}

fn finish(hist: Vec<u64>, order: &[usize], n: usize, cfg: KConfig) -> Vec<u64> {
    let mut out = vec![0u64; hist.len()];
    let mut acc = if cfg.include_self { n as u64 } else { 0 };
    for (rank, &input_pos) in order.iter().enumerate() {
        acc += hist[rank];
        out[input_pos] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_data::clustered_on_network;
    use lsga_network::{grid_network, sample_on_network};

    fn thresholds() -> Vec<f64> {
        (1..=8).map(|i| i as f64 * 2.0).collect()
    }

    #[test]
    fn shared_equals_naive() {
        let net = grid_network(6, 6, 4.0);
        let events = sample_on_network(&net, 60, 9);
        for cfg in [
            KConfig {
                include_self: false,
            },
            KConfig { include_self: true },
        ] {
            let naive = network_k_naive(&net, &events, &thresholds(), cfg);
            let shared = network_k_shared(&net, &events, &thresholds(), cfg);
            assert_eq!(naive, shared);
        }
    }

    #[test]
    fn shared_equals_naive_on_clustered_events() {
        let net = grid_network(8, 8, 5.0);
        let events = clustered_on_network(&net, 5, 12, 4.0, 21);
        let naive = network_k_naive(&net, &events, &thresholds(), KConfig::default());
        let shared = network_k_shared(&net, &events, &thresholds(), KConfig::default());
        assert_eq!(naive, shared);
        // Counts must be monotone in s.
        for w in naive.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn path_graph_analytic_counts() {
        // Straight road of length 10, events at offsets 0, 1, 2, ..., 9
        // on one edge: network distance = offset difference.
        let mut b = lsga_network::NetworkBuilder::new();
        let u = b.add_vertex(lsga_core::Point::new(0.0, 0.0));
        let v = b.add_vertex(lsga_core::Point::new(10.0, 0.0));
        b.add_edge(u, v, None).unwrap();
        let net = b.build().unwrap();
        let events: Vec<EdgePosition> = (0..10)
            .map(|i| EdgePosition {
                edge: lsga_network::EdgeId(0),
                offset: i as f64,
            })
            .collect();
        let ks = network_k_shared(&net, &events, &[1.0, 2.0, 3.0], KConfig::default());
        // Lag-j ordered pairs: 2·(10 − j); K(s=k) = Σ_{j≤k} 2(10−j).
        assert_eq!(ks, vec![18, 34, 48]);
    }

    #[test]
    fn clustered_events_detected_by_plot() {
        let net = grid_network(7, 7, 5.0);
        let events = clustered_on_network(&net, 4, 15, 3.0, 3);
        let plot = network_k_plot(&net, &events, &thresholds(), 15, 77, KConfig::default());
        assert!(
            !plot.clustered_thresholds().is_empty(),
            "observed {:?} upper {:?}",
            plot.observed,
            plot.upper
        );
    }

    #[test]
    fn csr_on_network_within_envelope() {
        let net = grid_network(7, 7, 5.0);
        let events = sample_on_network(&net, 60, 1000);
        let plot = network_k_plot(&net, &events, &thresholds(), 30, 55, KConfig::default());
        let inside = plot
            .thresholds
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                plot.observed[*i] >= plot.lower[*i] && plot.observed[*i] <= plot.upper[*i]
            })
            .count();
        assert!(inside >= plot.thresholds.len() - 1);
    }

    #[test]
    fn empty_events() {
        let net = grid_network(3, 3, 1.0);
        assert_eq!(
            network_k_naive(&net, &[], &thresholds(), KConfig::default()),
            vec![0; 8]
        );
        assert_eq!(
            network_k_shared(&net, &[], &thresholds(), KConfig::default()),
            vec![0; 8]
        );
    }
}
