//! Range-query-based K-function methods (paper §2.3).
//!
//! The paper frames the K-function as `K_P(s) = Σ_i |R(p_i)|` over range
//! sets `R(p_i) = {p_j : dist ≤ s}` served by an index. Three index
//! back-ends are provided (grid, kd-tree, ball-tree), plus the
//! *distance-histogram* evaluation that answers **all `D` thresholds of a
//! K-function plot in one pass** — the computational sharing that makes
//! Definition 3's `(L+1) × D` evaluations tractable.

use crate::parallel::POINT_CHUNK;
use crate::KConfig;
use lsga_core::par::{par_reduce, Threads};
use lsga_core::soa::{distances_sq_tile, TILE};
use lsga_core::Point;
use lsga_index::{BallTree, GridIndex, KdTree, RTree};
use lsga_obs::{self as obs, Counter};

/// K-function via a bucket-grid range count per point.
pub fn grid_k(points: &[Point], s: f64, cfg: KConfig) -> u64 {
    if points.is_empty() {
        return 0;
    }
    let index = GridIndex::build(points, s.max(1e-12));
    let mut count = 0u64;
    for p in points {
        count += index.count_within(p, s) as u64;
    }
    finish_ordered_count(count, points.len(), cfg)
}

/// K-function via kd-tree range counts.
pub fn kd_tree_k(points: &[Point], s: f64, cfg: KConfig) -> u64 {
    let tree = KdTree::build(points);
    let mut count = 0u64;
    for p in points {
        count += tree.range_count(p, s) as u64;
    }
    finish_ordered_count(count, points.len(), cfg)
}

/// K-function via STR R-tree range counts.
pub fn rtree_k(points: &[Point], s: f64, cfg: KConfig) -> u64 {
    let tree = RTree::build(points);
    let mut count = 0u64;
    for p in points {
        count += tree.range_count(p, s) as u64;
    }
    finish_ordered_count(count, points.len(), cfg)
}

/// K-function via ball-tree range counts.
pub fn ball_tree_k(points: &[Point], s: f64, cfg: KConfig) -> u64 {
    let tree = BallTree::build(points);
    let mut count = 0u64;
    for p in points {
        count += tree.range_count(p, s) as u64;
    }
    finish_ordered_count(count, points.len(), cfg)
}

/// Per-point range counts include the query point itself (distance 0);
/// correct to the configured self-pair convention.
#[inline]
fn finish_ordered_count(raw: u64, n: usize, cfg: KConfig) -> u64 {
    if cfg.include_self {
        raw
    } else {
        raw - n as u64
    }
}

/// Evaluate the K-function at **every** threshold in one shared pass.
///
/// `thresholds` may be in any order; results are returned in input
/// order. One grid-pruned sweep enumerates each unordered pair within
/// `max(thresholds)` once, buckets its distance, and a cumulative sum
/// yields all `D` values — `O(pairs(s_max) + D)` instead of
/// `O(D · pairs(s_max))`.
pub fn histogram_k_all(points: &[Point], thresholds: &[f64], cfg: KConfig) -> Vec<u64> {
    histogram_k_all_threads(points, thresholds, cfg, Threads::auto())
}

/// [`histogram_k_all`] with an explicit [`Threads`] config. The pair
/// sweep runs over parallel source-point chunks whose per-chunk
/// histograms are summed in chunk order — integer counts, so the result
/// is identical for any thread count.
pub fn histogram_k_all_threads(
    points: &[Point],
    thresholds: &[f64],
    cfg: KConfig,
    threads: Threads,
) -> Vec<u64> {
    if thresholds.is_empty() {
        return Vec::new();
    }
    let _span = obs::span("kfunc.histogram");
    let n = points.len();
    let self_term = if cfg.include_self { n as u64 } else { 0 };
    if n == 0 {
        return vec![0; thresholds.len()];
    }

    // Ascending thresholds with input-order mapping.
    let mut order: Vec<usize> = (0..thresholds.len()).collect();
    order.sort_by(|a, b| thresholds[*a].total_cmp(&thresholds[*b]));
    let sorted: Vec<f64> = order.iter().map(|&i| thresholds[i]).collect();
    let s_max = *sorted.last().unwrap();
    let s_max2 = s_max * s_max;

    // Histogram over "first threshold covering this pair distance".
    let index = GridIndex::build(points, s_max.max(1e-12));
    let sorted_ref = &sorted;
    let index_ref = &index;
    let hist = par_reduce(
        n,
        POINT_CHUNK,
        threads,
        vec![0u64; sorted.len()],
        |range| {
            let mut local = vec![0u64; sorted_ref.len()];
            let mut scanned: u64 = 0;
            // Tile scratch for batched squared distances. Bucketing
            // still compares on d = sqrt(d2), exactly as the scalar
            // loop did — switching the comparison to d² could flip
            // boundary ties through sqrt rounding.
            let mut d2s = [0.0f64; TILE];
            let exs = index_ref.entry_xs();
            let eys = index_ref.entry_ys();
            let ents = index_ref.entries();
            for i in range {
                let p = &points[i];
                let (cx0, cx1) = index_ref.cell_col_range(p.x - s_max, p.x + s_max);
                let (cy0, cy1) = index_ref.cell_row_range(p.y - s_max, p.y + s_max);
                for cy in cy0..=cy1 {
                    let span = index_ref.row_span(cy, cx0, cx1);
                    let mut s0 = span.start;
                    while s0 < span.end {
                        let s1 = (s0 + TILE).min(span.end);
                        let len = s1 - s0;
                        scanned += len as u64;
                        distances_sq_tile(p.x, p.y, &exs[s0..s1], &eys[s0..s1], &mut d2s[..len]);
                        for (k, &j) in ents[s0..s1].iter().enumerate() {
                            // Each unordered pair once: require j > i.
                            if (j as usize) > i {
                                let d2 = d2s[k];
                                if d2 <= s_max2 {
                                    let d = d2.sqrt();
                                    let bucket = sorted_ref.partition_point(|t| *t < d);
                                    if bucket < local.len() {
                                        local[bucket] += 2; // ordered pairs
                                    }
                                }
                            }
                        }
                        s0 = s1;
                    }
                }
            }
            obs::add(Counter::KfuncPairs, scanned);
            local
        },
        |mut acc, part| {
            for (a, p) in acc.iter_mut().zip(&part) {
                *a += p;
            }
            acc
        },
    );
    // Cumulate and un-permute.
    let mut out = vec![0u64; thresholds.len()];
    let mut acc = self_term;
    for (rank, &input_pos) in order.iter().enumerate() {
        acc += hist[rank];
        out[input_pos] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_k;

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new((f * 0.831).sin() * 30.0, (f * 0.557).cos() * 30.0)
            })
            .collect()
    }

    #[test]
    fn all_backends_match_naive() {
        let pts = scatter(250);
        for cfg in [
            KConfig {
                include_self: false,
            },
            KConfig { include_self: true },
        ] {
            for s in [0.1, 2.0, 11.0, 100.0] {
                let want = naive_k(&pts, s, cfg);
                assert_eq!(grid_k(&pts, s, cfg), want, "grid s={s}");
                assert_eq!(kd_tree_k(&pts, s, cfg), want, "kd s={s}");
                assert_eq!(ball_tree_k(&pts, s, cfg), want, "ball s={s}");
                assert_eq!(rtree_k(&pts, s, cfg), want, "rtree s={s}");
            }
        }
    }

    #[test]
    fn histogram_matches_naive_at_every_threshold() {
        let pts = scatter(200);
        let thresholds = [0.5, 1.0, 3.0, 7.0, 15.0, 40.0];
        for cfg in [
            KConfig {
                include_self: false,
            },
            KConfig { include_self: true },
        ] {
            let all = histogram_k_all(&pts, &thresholds, cfg);
            for (t, got) in thresholds.iter().zip(&all) {
                assert_eq!(*got, naive_k(&pts, *t, cfg), "t={t}");
            }
        }
    }

    #[test]
    fn histogram_handles_unsorted_thresholds() {
        let pts = scatter(100);
        let cfg = KConfig::default();
        let shuffled = [15.0, 0.5, 7.0];
        let got = histogram_k_all(&pts, &shuffled, cfg);
        assert_eq!(got[0], naive_k(&pts, 15.0, cfg));
        assert_eq!(got[1], naive_k(&pts, 0.5, cfg));
        assert_eq!(got[2], naive_k(&pts, 7.0, cfg));
    }

    #[test]
    fn histogram_monotone_when_sorted() {
        let pts = scatter(150);
        let ts: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let ks = histogram_k_all(&pts, &ts, KConfig::default());
        for w in ks.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn empty_inputs() {
        let cfg = KConfig::default();
        assert_eq!(grid_k(&[], 1.0, cfg), 0);
        assert_eq!(kd_tree_k(&[], 1.0, cfg), 0);
        assert_eq!(ball_tree_k(&[], 1.0, cfg), 0);
        assert_eq!(histogram_k_all(&[], &[1.0], cfg), vec![0]);
        assert!(histogram_k_all(&scatter(5), &[], cfg).is_empty());
    }

    #[test]
    fn duplicates_and_boundary_distances() {
        // Points at exact threshold distances.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 4.0),
            Point::new(0.0, 0.0), // duplicate
        ];
        let cfg = KConfig::default();
        for s in [0.0, 3.0, 4.0, 5.0] {
            assert_eq!(grid_k(&pts, s, cfg), naive_k(&pts, s, cfg), "s={s}");
            assert_eq!(
                histogram_k_all(&pts, &[s], cfg)[0],
                naive_k(&pts, s, cfg),
                "hist s={s}"
            );
        }
    }
}
