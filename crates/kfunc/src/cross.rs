//! Bivariate (cross-type) K-function — the multitype extension of
//! Definition 2 used throughout the applied literature the paper cites
//! (e.g. crimes vs. bars, crashes vs. schools): does one event type
//! cluster *around* another?
//!
//! `K₁₂(s) = Σ_{p ∈ P₁} Σ_{q ∈ P₂} I(dist(p, q) ≤ s)` — pairs across the
//! two types only. The null model is **random labelling**: pool both
//! sets, reshuffle the type labels, recompute; observed counts above
//! the envelope mean the types attract, below that they repel.

use crate::parallel::POINT_CHUNK;
use crate::KConfig;
use lsga_core::par::{par_map, par_reduce, Threads};
use lsga_core::util::mix_seed;
use lsga_core::Point;
use lsga_index::GridIndex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Cross-type pair counts at every threshold (input order preserved).
/// Counts are directed `P₁ → P₂` pairs; the statistic is symmetric in
/// the two sets (`K₁₂ = K₂₁` in counts).
pub fn cross_k(a: &[Point], b: &[Point], thresholds: &[f64]) -> Vec<u64> {
    cross_k_threads(a, b, thresholds, Threads::auto())
}

/// [`cross_k`] with an explicit [`Threads`] config. Source points of
/// `a` sweep in parallel chunks; the integer per-chunk histograms are
/// summed in chunk order, so counts are identical for any thread count.
pub fn cross_k_threads(a: &[Point], b: &[Point], thresholds: &[f64], threads: Threads) -> Vec<u64> {
    if a.is_empty() || b.is_empty() || thresholds.is_empty() {
        return vec![0; thresholds.len()];
    }
    let mut order: Vec<usize> = (0..thresholds.len()).collect();
    order.sort_by(|x, y| thresholds[*x].total_cmp(&thresholds[*y]));
    let sorted: Vec<f64> = order.iter().map(|&i| thresholds[i]).collect();
    let s_max = *sorted.last().unwrap();
    let s_max2 = s_max * s_max;

    let index = GridIndex::build(b, s_max.max(1e-12));
    let sorted_ref = &sorted;
    let index_ref = &index;
    let hist = par_reduce(
        a.len(),
        POINT_CHUNK,
        threads,
        vec![0u64; sorted.len()],
        |range| {
            let mut local = vec![0u64; sorted_ref.len()];
            for p in &a[range] {
                index_ref.for_each_candidate(p, s_max, |_, q| {
                    let d2 = p.dist_sq(q);
                    if d2 <= s_max2 {
                        let bucket = sorted_ref.partition_point(|t| *t < d2.sqrt());
                        if bucket < local.len() {
                            local[bucket] += 1;
                        }
                    }
                });
            }
            local
        },
        |mut acc, part| {
            for (x, y) in acc.iter_mut().zip(&part) {
                *x += y;
            }
            acc
        },
    );
    let mut out = vec![0u64; thresholds.len()];
    let mut acc = 0u64;
    for (rank, &pos) in order.iter().enumerate() {
        acc += hist[rank];
        out[pos] = acc;
    }
    out
}

/// A cross-K plot: observed counts against random-labelling envelopes.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossKPlot {
    pub thresholds: Vec<f64>,
    pub observed: Vec<u64>,
    pub lower: Vec<u64>,
    pub upper: Vec<u64>,
}

impl CrossKPlot {
    /// Thresholds where the types attract (observed above the envelope).
    pub fn attraction_thresholds(&self) -> Vec<f64> {
        self.thresholds
            .iter()
            .enumerate()
            .filter(|(i, _)| self.observed[*i] > self.upper[*i])
            .map(|(_, t)| *t)
            .collect()
    }

    /// Thresholds where the types repel (observed below the envelope).
    pub fn repulsion_thresholds(&self) -> Vec<f64> {
        self.thresholds
            .iter()
            .enumerate()
            .filter(|(i, _)| self.observed[*i] < self.lower[*i])
            .map(|(_, t)| *t)
            .collect()
    }
}

/// Build a cross-K plot under the random-labelling null: the pooled
/// points keep their locations, the type split is re-drawn `n_sims`
/// times. Deterministic in `seed`. `_cfg` is accepted for signature
/// symmetry with the univariate plots; self-pairs cannot occur across
/// types.
pub fn cross_k_plot(
    a: &[Point],
    b: &[Point],
    thresholds: &[f64],
    n_sims: usize,
    seed: u64,
    cfg: KConfig,
) -> CrossKPlot {
    cross_k_plot_threads(a, b, thresholds, n_sims, seed, cfg, Threads::auto())
}

/// [`cross_k_plot`] with an explicit [`Threads`] config. Each relabelling
/// simulation draws its shuffle from its own `(seed, sim)` RNG stream,
/// so the simulations run in parallel with bit-identical envelopes for
/// any thread count.
#[allow(clippy::too_many_arguments)] // mirrors the univariate plot signature
pub fn cross_k_plot_threads(
    a: &[Point],
    b: &[Point],
    thresholds: &[f64],
    n_sims: usize,
    seed: u64,
    _cfg: KConfig,
    threads: Threads,
) -> CrossKPlot {
    assert!(n_sims >= 1, "need at least one simulation");
    let observed = cross_k_threads(a, b, thresholds, threads);
    let mut pooled: Vec<Point> = Vec::with_capacity(a.len() + b.len());
    pooled.extend_from_slice(a);
    pooled.extend_from_slice(b);
    let pooled_ref = &pooled;
    let sims: Vec<Vec<u64>> = par_map(n_sims, 1, threads, |sim| {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, sim as u64));
        let mut relabelled = pooled_ref.clone();
        relabelled.shuffle(&mut rng);
        let (ra, rb) = relabelled.split_at(a.len());
        // The simulations already occupy the pool: count sequentially.
        cross_k_threads(ra, rb, thresholds, Threads::exact(1))
    });
    let mut lower = vec![u64::MAX; thresholds.len()];
    let mut upper = vec![0u64; thresholds.len()];
    for ks in &sims {
        for (i, v) in ks.iter().enumerate() {
            lower[i] = lower[i].min(*v);
            upper[i] = upper[i].max(*v);
        }
    }
    CrossKPlot {
        thresholds: thresholds.to_vec(),
        observed,
        lower,
        upper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::BBox;
    use lsga_data::{gaussian_mixture, uniform_points, Hotspot};

    fn window() -> BBox {
        BBox::new(0.0, 0.0, 100.0, 100.0)
    }

    fn brute_cross(a: &[Point], b: &[Point], s: f64) -> u64 {
        let mut c = 0;
        for p in a {
            for q in b {
                if p.dist(q) <= s {
                    c += 1;
                }
            }
        }
        c
    }

    #[test]
    fn matches_brute_force() {
        let a = uniform_points(150, window(), 1);
        let b = uniform_points(120, window(), 2);
        let ts = [3.0, 10.0, 30.0, 200.0];
        let got = cross_k(&a, &b, &ts);
        for (t, g) in ts.iter().zip(&got) {
            assert_eq!(*g, brute_cross(&a, &b, *t), "t={t}");
        }
        // Symmetry of counts.
        let rev = cross_k(&b, &a, &ts);
        assert_eq!(got, rev);
    }

    #[test]
    fn paired_types_attract() {
        // Type b events sit right next to type a events (e.g. crashes
        // next to bars). Random labelling destroys the pairing, so the
        // observed short-range cross counts exceed the envelope.
        let a = uniform_points(200, window(), 3);
        let b: Vec<Point> = a
            .iter()
            .enumerate()
            .map(|(i, p)| Point::new(p.x + 0.3 + (i % 3) as f64 * 0.1, p.y))
            .collect();
        let ts: Vec<f64> = (1..=5).map(|i| i as f64).collect();
        let plot = cross_k_plot(&a, &b, &ts, 20, 9, KConfig::default());
        assert!(
            !plot.attraction_thresholds().is_empty(),
            "observed {:?} upper {:?}",
            plot.observed,
            plot.upper
        );
    }

    #[test]
    fn identically_distributed_types_show_no_attraction() {
        // Both types drawn from the same hotspot: under random labelling
        // this IS the null, so the plot must stay inside the envelope.
        let hs = [Hotspot {
            center: Point::new(40.0, 40.0),
            sigma: 5.0,
            weight: 1.0,
        }];
        let a = gaussian_mixture(200, &hs, window(), 3);
        let b = gaussian_mixture(200, &hs, window(), 4);
        let ts: Vec<f64> = (1..=5).map(|i| i as f64 * 3.0).collect();
        let plot = cross_k_plot(&a, &b, &ts, 40, 9, KConfig::default());
        let inside = (0..ts.len())
            .filter(|i| plot.observed[*i] >= plot.lower[*i] && plot.observed[*i] <= plot.upper[*i])
            .count();
        assert!(inside >= ts.len() - 1, "{plot:?}");
    }

    #[test]
    fn segregated_types_repel() {
        let a = gaussian_mixture(
            200,
            &[Hotspot {
                center: Point::new(20.0, 20.0),
                sigma: 5.0,
                weight: 1.0,
            }],
            window(),
            5,
        );
        let b = gaussian_mixture(
            200,
            &[Hotspot {
                center: Point::new(80.0, 80.0),
                sigma: 5.0,
                weight: 1.0,
            }],
            window(),
            6,
        );
        let ts: Vec<f64> = (1..=6).map(|i| i as f64 * 4.0).collect();
        let plot = cross_k_plot(&a, &b, &ts, 20, 10, KConfig::default());
        assert!(
            !plot.repulsion_thresholds().is_empty(),
            "observed {:?} lower {:?}",
            plot.observed,
            plot.lower
        );
    }

    #[test]
    fn independent_types_within_envelope() {
        let a = uniform_points(250, window(), 7);
        let b = uniform_points(250, window(), 8);
        let ts: Vec<f64> = (1..=5).map(|i| i as f64 * 4.0).collect();
        let plot = cross_k_plot(&a, &b, &ts, 40, 11, KConfig::default());
        let inside = (0..ts.len())
            .filter(|i| plot.observed[*i] >= plot.lower[*i] && plot.observed[*i] <= plot.upper[*i])
            .count();
        assert!(inside >= ts.len() - 1, "{:?}", plot);
    }

    #[test]
    fn empty_inputs() {
        let a = uniform_points(10, window(), 1);
        assert_eq!(cross_k(&a, &[], &[1.0]), vec![0]);
        assert_eq!(cross_k(&[], &a, &[1.0]), vec![0]);
        assert!(cross_k(&a, &a, &[]).is_empty());
    }
}
