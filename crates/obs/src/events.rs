//! Spans and instant events with per-worker buffering.
//!
//! [`span`] returns an RAII guard that records `(start, duration)` on
//! drop; [`instant`] records a point-in-time marker. Each thread lazily
//! registers one mutex-protected buffer in a global sink list, so
//! recording locks only the recorder's own (uncontended) mutex — safe
//! under `lsga_core::par`'s scoped worker threads, which come and go
//! per parallel region. Buffers of exited threads stay reachable
//! through the sink list until drained, then the registration is
//! garbage-collected.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// What one recorded event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A closed span with its duration in nanoseconds.
    Span { dur_ns: u64 },
    /// A point-in-time marker.
    Instant,
}

/// One recorded event on the trace timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Static site name, dotted (`"kdv.parallel"`, `"dist.reshipment"`).
    pub name: &'static str,
    /// Nanoseconds since the trace epoch (first [`crate::enable`]).
    pub t_ns: u64,
    /// Small dense id of the recording thread (registration order).
    pub tid: u32,
    pub kind: EventKind,
}

type Sink = Arc<Mutex<Vec<Event>>>;

static SINKS: Mutex<Vec<Sink>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static LOCAL: RefCell<Option<(u32, Sink)>> = const { RefCell::new(None) };
}

/// The trace epoch (`ts = 0`); pinned on first use.
pub(crate) fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn push(event: Event) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let (_, sink) = slot.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let sink: Sink = Arc::new(Mutex::new(Vec::new()));
            SINKS.lock().expect("obs sink registry").push(sink.clone());
            (tid, sink)
        });
        sink.lock().expect("own obs sink").push(event);
    });
}

fn local_tid() -> u32 {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let (tid, _) = slot.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let sink: Sink = Arc::new(Mutex::new(Vec::new()));
            SINKS.lock().expect("obs sink registry").push(sink.clone());
            (tid, sink)
        });
        *tid
    })
}

/// RAII span: records one [`EventKind::Span`] event when dropped.
/// Constructed disabled (a no-op) unless the collector is on.
#[must_use = "a span measures the scope it is bound to"]
pub struct SpanGuard {
    live: Option<(&'static str, u64)>,
}

/// Open a span named `name`. One relaxed atomic load when disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if crate::enabled() {
        SpanGuard {
            live: Some((name, now_ns())),
        }
    } else {
        SpanGuard { live: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.live.take() {
            push(Event {
                name,
                t_ns: start,
                tid: local_tid(),
                kind: EventKind::Span {
                    dur_ns: now_ns().saturating_sub(start),
                },
            });
        }
    }
}

/// Record an instant event (a vertical marker on the trace timeline).
#[inline]
pub fn instant(name: &'static str) {
    if crate::enabled() {
        push(Event {
            name,
            t_ns: now_ns(),
            tid: local_tid(),
            kind: EventKind::Instant,
        });
    }
}

/// Take every buffered event, merged deterministically: sorted by
/// `(t_ns, name, tid, kind)`, so the same multiset of records always
/// drains in the same order regardless of which worker recorded what.
/// Registrations of exited threads are garbage-collected.
pub(crate) fn take_events() -> Vec<Event> {
    let mut sinks = SINKS.lock().expect("obs sink registry");
    let mut events = Vec::new();
    for sink in sinks.iter() {
        events.append(&mut sink.lock().expect("obs sink"));
    }
    // A strong count of 1 means only the registry still holds the
    // buffer: its thread is gone and the buffer was just emptied.
    sinks.retain(|s| Arc::strong_count(s) > 1);
    drop(sinks);
    events.sort_by(|a, b| {
        let ka = (a.t_ns, a.name, a.tid, dur_of(a));
        let kb = (b.t_ns, b.name, b.tid, dur_of(b));
        ka.cmp(&kb)
    });
    events
}

fn dur_of(e: &Event) -> u64 {
    match e.kind {
        EventKind::Span { dur_ns } => dur_ns,
        EventKind::Instant => 0,
    }
}

/// Drop every buffered event.
pub(crate) fn clear() {
    let _ = take_events();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_buffers_merge_and_gc() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::enable();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _s = span("scoped.work");
                });
            }
        });
        instant("main.marker");
        let events = take_events();
        crate::disable();
        assert_eq!(events.len(), 5);
        assert_eq!(
            events
                .iter()
                .filter(|e| e.name == "scoped.work" && matches!(e.kind, EventKind::Span { .. }))
                .count(),
            4
        );
        // The four scoped threads exited; their registrations are gone
        // (only long-lived threads keep sinks registered).
        assert!(SINKS.lock().unwrap().len() <= 1 + NEXT_TID.load(Ordering::Relaxed) as usize);
        assert!(take_events().is_empty());
    }

    #[test]
    fn sort_is_total_and_stable_for_equal_times() {
        let mk = |name, t_ns, tid| Event {
            name,
            t_ns,
            tid,
            kind: EventKind::Instant,
        };
        let mut a = [mk("b", 5, 1), mk("a", 5, 2), mk("a", 1, 9)];
        a.sort_by(|x, y| (x.t_ns, x.name, x.tid).cmp(&(y.t_ns, y.name, y.tid)));
        assert_eq!(a[0].name, "a");
        assert_eq!(a[0].t_ns, 1);
        assert_eq!(a[1].name, "a");
        assert_eq!(a[2].name, "b");
    }
}
