//! Snapshot of a drained collector plus the three exporters: summary
//! table, chrome://tracing JSON, and the flat `OBS_<id>.json` metrics
//! document. All writers are hand-rolled — the workspace is offline,
//! so no serde.

use crate::events::{Event, EventKind};
use crate::registry::HistSnapshot;

/// Aggregated view of all spans sharing one name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

impl SpanStat {
    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

/// Everything one [`crate::drain`] captured.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    counters: Vec<(&'static str, u64)>,
    hists: Vec<HistSnapshot>,
    events: Vec<Event>,
}

impl Snapshot {
    pub(crate) fn collect() -> Self {
        Snapshot {
            counters: crate::registry::take_counters(),
            hists: crate::registry::take_hists(),
            events: crate::events::take_events(),
        }
    }

    /// Value of the counter with this dotted name (0 if unknown).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// `(name, value)` for every counter, in registry order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// Every histogram, in registry order.
    pub fn histograms(&self) -> &[HistSnapshot] {
        &self.hists
    }

    /// Every event, in the deterministic drain order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// True when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.counters.iter().all(|(_, v)| *v == 0)
            && self.hists.iter().all(|h| h.count == 0)
    }

    /// Aggregate spans by name, ordered by first appearance on the
    /// (deterministically sorted) timeline.
    pub fn spans(&self) -> Vec<SpanStat> {
        let mut stats: Vec<SpanStat> = Vec::new();
        for e in &self.events {
            let EventKind::Span { dur_ns } = e.kind else {
                continue;
            };
            match stats.iter_mut().find(|s| s.name == e.name) {
                Some(s) => {
                    s.count += 1;
                    s.total_ns += dur_ns;
                    s.max_ns = s.max_ns.max(dur_ns);
                }
                None => stats.push(SpanStat {
                    name: e.name,
                    count: 1,
                    total_ns: dur_ns,
                    max_ns: dur_ns,
                }),
            }
        }
        stats
    }

    /// Human-readable summary: non-zero counters, histogram means,
    /// span aggregates — the table the experiments binary prints.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str("counter                          value\n");
        out.push_str("-------------------------------  ------------------\n");
        for (name, v) in &self.counters {
            if *v > 0 {
                out.push_str(&format!("{name:<32} {v}\n"));
            }
        }
        for h in &self.hists {
            if h.count > 0 {
                out.push_str(&format!(
                    "{:<32} n={} mean={:.1} max_bucket<={}\n",
                    h.name,
                    h.count,
                    h.mean(),
                    h.buckets.last().map_or(0, |(hi, _)| *hi),
                ));
            }
        }
        let spans = self.spans();
        if !spans.is_empty() {
            out.push_str("\nspan                             count    total_ms\n");
            out.push_str("-------------------------------  -------  ----------\n");
            for s in &spans {
                out.push_str(&format!(
                    "{:<32} {:<8} {:.3}\n",
                    s.name,
                    s.count,
                    s.total_ms()
                ));
            }
        }
        out
    }

    /// The chrome://tracing / Perfetto *trace event format*: complete
    /// (`ph:"X"`) events for spans, `ph:"i"` for instants, one `tid`
    /// per recording thread. Load via `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            let ts = e.t_ns as f64 / 1e3; // microseconds
            match e.kind {
                EventKind::Span { dur_ns } => out.push_str(&format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                    esc(e.name),
                    e.tid,
                    ts,
                    dur_ns as f64 / 1e3
                )),
                EventKind::Instant => out.push_str(&format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":{},\"ts\":{:.3}}}",
                    esc(e.name),
                    e.tid,
                    ts
                )),
            }
            out.push_str(if i + 1 < self.events.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]}\n");
        out
    }

    /// The flat `OBS_<id>.json` document: counters (all, including
    /// zeros, so audits can assert on exact values), histograms, and
    /// span aggregates. Counters fed thread-count-invariant work are
    /// identical across `LSGA_THREADS` — CI diffs this object between
    /// 1- and 8-thread runs.
    pub fn to_json(&self, id: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"id\": \"{}\",\n", esc(id)));
        out.push_str("  \"counters\": {\n");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(&format!("    \"{}\": {}", esc(name), v));
            out.push_str(if i + 1 < self.counters.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  },\n");
        out.push_str("  \"histograms\": [\n");
        for (i, h) in self.hists.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"count\": {}, \"sum\": {}, \"buckets\": [",
                esc(h.name),
                h.count,
                h.sum
            ));
            for (j, (hi, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{hi}, {n}]"));
            }
            out.push_str("] }");
            out.push_str(if i + 1 < self.hists.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"spans\": [\n");
        let spans = self.spans();
        for (i, s) in spans.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"count\": {}, \"total_ms\": {:.3}, \"max_ms\": {:.3} }}",
                esc(s.name),
                s.count,
                s.total_ms(),
                s.max_ns as f64 / 1e6
            ));
            out.push_str(if i + 1 < spans.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON string escaping for the ASCII control set plus quote/backslash.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{add, instant, span, Counter};

    fn example_snapshot() -> Snapshot {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::enable();
        add(Counter::KdvPairs, 100);
        add(Counter::NumericAnomalies, 2);
        crate::record(crate::Hist::KrigingSystemSize, 9);
        {
            let _a = span("outer");
            let _b = span("inner");
            instant("marker");
        }
        let snap = crate::drain();
        crate::disable();
        snap
    }

    #[test]
    fn span_aggregation_counts_and_orders() {
        let snap = example_snapshot();
        let spans = snap.spans();
        assert_eq!(spans.len(), 2);
        // "outer" opened first -> earlier timestamp -> listed first.
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].count, 1);
        assert!(spans[0].total_ns >= spans[1].total_ns);
    }

    #[test]
    fn summary_lists_nonzero_counters_and_spans() {
        let snap = example_snapshot();
        let text = snap.summary();
        assert!(text.contains("kdv.pairs_evaluated"));
        assert!(text.contains("numeric.anomalies_repaired"));
        assert!(text.contains("interp.kriging_system_size"));
        assert!(text.contains("outer"));
        assert!(!text.contains("dist.retries"), "zero counters omitted");
    }

    #[test]
    fn chrome_trace_shape() {
        let snap = example_snapshot();
        let trace = snap.chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"name\":\"inner\""));
        assert!(trace.trim_end().ends_with("]}"));
    }

    #[test]
    fn obs_json_shape_and_zero_counters_present() {
        let snap = example_snapshot();
        let json = snap.to_json("e99");
        assert!(json.contains("\"id\": \"e99\""));
        assert!(json.contains("\"kdv.pairs_evaluated\": 100"));
        assert!(json.contains("\"numeric.anomalies_repaired\": 2"));
        // Zero counters are explicitly present for mechanical diffing.
        assert!(json.contains("\"dist.retries\": 0"));
        assert!(json.contains("\"buckets\": [[16, 1]]"));
        assert!(json.contains("\"name\": \"outer\""));
    }

    #[test]
    fn counter_lookup_and_emptiness() {
        let snap = example_snapshot();
        assert_eq!(snap.counter("kdv.pairs_evaluated"), 100);
        assert_eq!(snap.counter("no.such.counter"), 0);
        assert!(!snap.is_empty());
    }
}
