//! # lsga-obs — tracing and metrics for the lsga suite
//!
//! A dependency-free observability layer in the style of the offline
//! compat crates: the algorithms account for their own work (pairs
//! evaluated, cells pruned, index nodes visited, kriging solves) and
//! for every **numeric anomaly they detect and repair**, so the
//! complexity claims the suite reproduces (`O(X·Y·n)` KDV, `O(n²)`
//! K-function, `O(X·Y·n)` IDW) are auditable from a run's own
//! telemetry instead of trusted from the source.
//!
//! Three pieces:
//!
//! * **Counters and histograms** ([`registry`]) — a fixed registry of
//!   work counters ([`Counter`]) and log₂-bucket histograms ([`Hist`])
//!   backed by relaxed atomics. Integer adds commute, so every counter
//!   that accumulates a *thread-count-invariant* quantity (total pairs
//!   evaluated, total solves) reads identically under any
//!   `LSGA_THREADS` — the telemetry obeys the same determinism
//!   discipline as the algorithms (`tests/obs_invariance.rs`).
//! * **Spans and instant events** ([`events`]) — RAII [`SpanGuard`]s
//!   and point-in-time markers, buffered per worker thread (each
//!   thread registers one mutex-protected buffer, so recording never
//!   contends) and merged deterministically at [`drain`] by sorting on
//!   `(timestamp, name, thread, duration)`.
//! * **Exporters** ([`export`]) — a human-readable summary table, the
//!   `chrome://tracing` / Perfetto trace-event JSON, and the flat
//!   `OBS_<id>.json` metrics document the experiments binary writes
//!   alongside `BENCH_<id>.json`.
//!
//! # Cost model
//!
//! The collector is **disabled by default**. Every instrumentation
//! site is gated on one relaxed atomic load ([`enabled`]); a disabled
//! span constructs a no-op guard and a disabled counter add is the
//! load plus a branch. Hot loops accumulate into a local integer and
//! publish once per row/chunk/query, so the enabled cost is one
//! relaxed `fetch_add` per work item of the *outer* decomposition —
//! never per point pair. Experiment E20 measures the traced-vs-
//! untraced overhead end to end.
//!
//! # Example
//!
//! ```
//! lsga_obs::reset();
//! lsga_obs::enable();
//! {
//!     let _span = lsga_obs::span("example.work");
//!     lsga_obs::add(lsga_obs::Counter::KdvPairs, 42);
//! }
//! let snap = lsga_obs::drain();
//! assert_eq!(snap.counter("kdv.pairs_evaluated"), 42);
//! assert_eq!(snap.spans()[0].name, "example.work");
//! lsga_obs::disable();
//! ```

pub mod events;
pub mod export;
pub mod registry;

pub use events::{instant, span, Event, EventKind, SpanGuard};
pub use export::{Snapshot, SpanStat};
pub use registry::{add, counter_value, incr, record, Counter, Hist, HistSnapshot};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn the collector on. Idempotent; also pins the trace epoch so the
/// first enable anchors `ts = 0` of the trace timeline.
pub fn enable() {
    events::epoch();
    ENABLED.store(true, Ordering::Release);
}

/// Turn the collector off. Spans already open keep recording their
/// drop; new sites become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// The one-atomic-load gate every instrumentation site checks first.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear all counters, histograms, and buffered events without
/// touching the enabled flag. Tests serialize around this (the
/// registry is process-global).
pub fn reset() {
    registry::reset();
    events::clear();
}

/// Drain everything recorded since the last [`drain`]/[`reset`] into
/// an immutable [`Snapshot`] (counters and histograms are reset,
/// event buffers emptied). The merge across worker-thread buffers is
/// deterministic: events sort by `(timestamp, name, thread, kind)`.
pub fn drain() -> Snapshot {
    Snapshot::collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry is process-global; tests that enable/assert it
    // serialize here.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_sites_record_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        disable();
        add(Counter::KdvPairs, 10);
        incr(Counter::KrigingSolves);
        record(Hist::KrigingSystemSize, 9);
        {
            let _s = span("should.not.appear");
            instant("also.not");
        }
        let snap = drain();
        assert_eq!(snap.counter("kdv.pairs_evaluated"), 0);
        assert!(snap.events().is_empty());
        assert!(snap.is_empty());
    }

    #[test]
    fn enabled_round_trip() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        enable();
        add(Counter::KfuncPairs, 7);
        add(Counter::KfuncPairs, 5);
        {
            let _s = span("work.outer");
            instant("work.marker");
        }
        let snap = drain();
        disable();
        assert_eq!(snap.counter("kfunc.pairs_evaluated"), 12);
        let names: Vec<&str> = snap.events().iter().map(|e| e.name).collect();
        assert!(names.contains(&"work.outer"));
        assert!(names.contains(&"work.marker"));
        // Drain resets.
        assert!(drain().is_empty());
    }

    #[test]
    fn counters_commute_across_threads() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        enable();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        incr(Counter::StatsPairs);
                    }
                });
            }
        });
        let snap = drain();
        disable();
        assert_eq!(snap.counter("stats.pairs_evaluated"), 8000);
    }
}
