//! The counter / histogram registry: a fixed set of named work
//! counters backed by relaxed atomics.
//!
//! A fixed enum (not a string-keyed map) keeps the enabled fast path
//! at one array index plus one relaxed `fetch_add`, and keeps the
//! crate dependency-free. Counts are integers, so accumulation
//! commutes: any counter fed a thread-count-invariant quantity reads
//! identically for every `LSGA_THREADS`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Work counters the algorithm crates bump. Each counts a quantity
/// that is a pure function of the input (never of thread count or
/// timing), except the `Dist*` counters which mirror the seeded —
/// hence equally deterministic — fault schedule, and the `Serve*`
/// counters which mirror cache dynamics: hit/miss/eviction totals are
/// deterministic for a fixed request sequence, but coalesced waits and
/// stale discards depend on genuine request concurrency (they count
/// how often the serving layer saved work, not how much algorithmic
/// work was done).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Point–pixel kernel evaluations across all KDV variants.
    KdvPairs,
    /// Candidate grid cells skipped (empty, or serving no pixel) by
    /// the pruned KDV row sweep.
    KdvCellsPruned,
    /// Point pairs examined across all K-function variants.
    KfuncPairs,
    /// Sample–query weight evaluations across IDW and kriging.
    InterpPairs,
    /// Weighted cross-products across Moran / Getis-Ord / LISA.
    StatsPairs,
    /// Neighbour-list entries gathered by DBSCAN ε-queries.
    StatsNeighbors,
    /// Candidate entries scanned inside bucket-grid queries.
    IndexEntriesScanned,
    /// Tree nodes visited by kd-tree queries (range + knn).
    IndexNodesVisited,
    /// Ordinary-kriging linear systems solved.
    KrigingSolves,
    /// Non-finite intermediates detected **and repaired** (IDW weight
    /// overflow, kriging weight blow-up). Zero on every
    /// well-conditioned input — `tests/finiteness.rs` asserts it.
    NumericAnomalies,
    /// Failed attempts the dist supervisor retried.
    DistRetries,
    /// Per-task deadlines that fired in the dist supervisor.
    DistTimeouts,
    /// Halo re-shipments during recovery.
    DistReshipments,
    /// Bytes those re-shipments cost.
    DistReshippedBytes,
    /// Tile requests answered straight from the serving cache.
    ServeCacheHits,
    /// Tile requests that missed the cache.
    ServeCacheMisses,
    /// Tiles actually computed by the serving layer (one per
    /// single-flight group, however many requests coalesced onto it).
    ServeTilesComputed,
    /// Requests that waited on another request's in-flight computation
    /// instead of recomputing (single-flight coalescing).
    ServeCoalescedWaits,
    /// Tiles evicted by the byte-budgeted LRU (explicit cache clears
    /// included).
    ServeTilesEvicted,
    /// Cached tiles dropped because an append intersected their
    /// kernel-support-inflated bounding box.
    ServeTilesInvalidated,
    /// Computed tiles discarded instead of cached because the layer
    /// changed while they were being computed.
    ServeStaleDiscards,
    /// Tiles served at a degraded (ε-guaranteed approximate) quality
    /// tier because the admission controller judged the exact queue
    /// too deep for the request's deadline. Counts fresh degraded
    /// computes only; a degraded tile served again from the cache is a
    /// regular `serve.cache_hits`.
    ServeDegradedTiles,
    /// Background refinements that committed: a cached degraded tile
    /// upgraded to the exact, bit-identical one.
    ServeRefinedTiles,
    /// Refinement tasks dropped without committing — the layer
    /// generation moved under them (like stale flights), the cache
    /// entry was already exact, or the bounded queue overflowed.
    ServeRefineDiscards,
    /// Append segments built by the ingest path — exactly one per
    /// `insert_points` batch, however many CAS retries it takes (the
    /// segment is re-stamped, never rebuilt, on a generation conflict).
    IngestSegmentsCreated,
    /// Segments consumed by tier compactions (a k-way merge counts k).
    IngestSegmentsMerged,
    /// Bytes of segment payload (points + entry permutation + the
    /// entry-ordered coordinate columns) rewritten by tier compactions.
    IngestMergeBytes,
    /// Points appended across all `insert_points` batches.
    IngestPointsAppended,
    /// TCP connections accepted by the HTTP front-end's acceptors.
    HttpConnsAccepted,
    /// Requests a worker pulled off its queue and handled (malformed
    /// ones included — every parse attempt counts).
    HttpRequests,
    /// HTTP responses written with a 2xx status.
    HttpResponses2xx,
    /// HTTP responses written with a 4xx status (malformed requests,
    /// unknown routes/layers, out-of-pyramid coordinates).
    HttpResponses4xx,
    /// HTTP responses written with a 5xx status (queue-full 503s and
    /// shutdown sheds included).
    HttpResponses5xx,
    /// Connections refused with `503 + Retry-After` because every
    /// bounded worker queue was full at accept time.
    HttpQueueRejections,
    /// Queued-but-unstarted connections answered `503` during graceful
    /// shutdown (in-flight requests complete instead).
    HttpShedShutdown,
    /// Response bytes written to sockets (status line + headers + body).
    HttpBytesOut,
    /// Tile requests routed by the cluster front to an owner node
    /// (every routed `get_tile`/`get_tiles` element counts one).
    ClusterRoutedRequests,
    /// Per-node invalidation deliveries: one per *alive* node for each
    /// cluster `insert_points` broadcast.
    ClusterInvalidationsBroadcast,
    /// Simulated node deaths observed by the cluster planner (a node
    /// killed by several faults still dies once).
    ClusterNodeDeaths,
    /// Tiles whose serving re-homed from a dead owner to a survivor.
    ClusterTilesRehomed,
    /// Bytes of halo data re-shipped to the adopting node for each
    /// re-homed tile (`points_in_inflated_bbox × BYTES_PER_POINT`).
    ClusterReshippedBytes,
    /// `serve.tiles_computed` restricted to KDV layers. The per-kind
    /// quartet always sums to the aggregate counter.
    ServeKdvTilesComputed,
    /// `serve.tiles_computed` restricted to STKDV layers.
    ServeStkdvTilesComputed,
    /// `serve.tiles_computed` restricted to NKDV layers.
    ServeNkdvTilesComputed,
    /// `serve.tiles_computed` restricted to Gi*/LISA hotspot layers.
    ServeHotspotTilesComputed,
    /// `serve.tiles_invalidated` restricted to KDV layers.
    ServeKdvTilesInvalidated,
    /// `serve.tiles_invalidated` restricted to STKDV layers.
    ServeStkdvTilesInvalidated,
    /// `serve.tiles_invalidated` restricted to NKDV layers.
    ServeNkdvTilesInvalidated,
    /// `serve.tiles_invalidated` restricted to hotspot layers.
    ServeHotspotTilesInvalidated,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 49] = [
        Counter::KdvPairs,
        Counter::KdvCellsPruned,
        Counter::KfuncPairs,
        Counter::InterpPairs,
        Counter::StatsPairs,
        Counter::StatsNeighbors,
        Counter::IndexEntriesScanned,
        Counter::IndexNodesVisited,
        Counter::KrigingSolves,
        Counter::NumericAnomalies,
        Counter::DistRetries,
        Counter::DistTimeouts,
        Counter::DistReshipments,
        Counter::DistReshippedBytes,
        Counter::ServeCacheHits,
        Counter::ServeCacheMisses,
        Counter::ServeTilesComputed,
        Counter::ServeCoalescedWaits,
        Counter::ServeTilesEvicted,
        Counter::ServeTilesInvalidated,
        Counter::ServeStaleDiscards,
        Counter::ServeDegradedTiles,
        Counter::ServeRefinedTiles,
        Counter::ServeRefineDiscards,
        Counter::IngestSegmentsCreated,
        Counter::IngestSegmentsMerged,
        Counter::IngestMergeBytes,
        Counter::IngestPointsAppended,
        Counter::HttpConnsAccepted,
        Counter::HttpRequests,
        Counter::HttpResponses2xx,
        Counter::HttpResponses4xx,
        Counter::HttpResponses5xx,
        Counter::HttpQueueRejections,
        Counter::HttpShedShutdown,
        Counter::HttpBytesOut,
        Counter::ClusterRoutedRequests,
        Counter::ClusterInvalidationsBroadcast,
        Counter::ClusterNodeDeaths,
        Counter::ClusterTilesRehomed,
        Counter::ClusterReshippedBytes,
        Counter::ServeKdvTilesComputed,
        Counter::ServeStkdvTilesComputed,
        Counter::ServeNkdvTilesComputed,
        Counter::ServeHotspotTilesComputed,
        Counter::ServeKdvTilesInvalidated,
        Counter::ServeStkdvTilesInvalidated,
        Counter::ServeNkdvTilesInvalidated,
        Counter::ServeHotspotTilesInvalidated,
    ];

    /// Stable dotted name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Counter::KdvPairs => "kdv.pairs_evaluated",
            Counter::KdvCellsPruned => "kdv.cells_pruned",
            Counter::KfuncPairs => "kfunc.pairs_evaluated",
            Counter::InterpPairs => "interp.pairs_evaluated",
            Counter::StatsPairs => "stats.pairs_evaluated",
            Counter::StatsNeighbors => "stats.neighbors_gathered",
            Counter::IndexEntriesScanned => "index.entries_scanned",
            Counter::IndexNodesVisited => "index.nodes_visited",
            Counter::KrigingSolves => "interp.kriging_solves",
            Counter::NumericAnomalies => "numeric.anomalies_repaired",
            Counter::DistRetries => "dist.retries",
            Counter::DistTimeouts => "dist.timeouts",
            Counter::DistReshipments => "dist.halo_reshipments",
            Counter::DistReshippedBytes => "dist.reshipped_bytes",
            Counter::ServeCacheHits => "serve.cache_hits",
            Counter::ServeCacheMisses => "serve.cache_misses",
            Counter::ServeTilesComputed => "serve.tiles_computed",
            Counter::ServeCoalescedWaits => "serve.coalesced_waits",
            Counter::ServeTilesEvicted => "serve.tiles_evicted",
            Counter::ServeTilesInvalidated => "serve.tiles_invalidated",
            Counter::ServeStaleDiscards => "serve.stale_discards",
            Counter::ServeDegradedTiles => "serve.degraded_tiles",
            Counter::ServeRefinedTiles => "serve.refined_tiles",
            Counter::ServeRefineDiscards => "serve.refine_discards",
            Counter::IngestSegmentsCreated => "ingest.segments_created",
            Counter::IngestSegmentsMerged => "ingest.segments_merged",
            Counter::IngestMergeBytes => "ingest.merge_bytes",
            Counter::IngestPointsAppended => "ingest.points_appended",
            Counter::HttpConnsAccepted => "http.connections_accepted",
            Counter::HttpRequests => "http.requests",
            Counter::HttpResponses2xx => "http.responses_2xx",
            Counter::HttpResponses4xx => "http.responses_4xx",
            Counter::HttpResponses5xx => "http.responses_5xx",
            Counter::HttpQueueRejections => "http.queue_rejections",
            Counter::HttpShedShutdown => "http.shed_on_shutdown",
            Counter::HttpBytesOut => "http.bytes_out",
            Counter::ClusterRoutedRequests => "cluster.routed_requests",
            Counter::ClusterInvalidationsBroadcast => "cluster.invalidations_broadcast",
            Counter::ClusterNodeDeaths => "cluster.node_deaths",
            Counter::ClusterTilesRehomed => "cluster.tiles_rehomed",
            Counter::ClusterReshippedBytes => "cluster.reshipped_bytes",
            Counter::ServeKdvTilesComputed => "serve.tiles_computed{kind=kdv}",
            Counter::ServeStkdvTilesComputed => "serve.tiles_computed{kind=stkdv}",
            Counter::ServeNkdvTilesComputed => "serve.tiles_computed{kind=nkdv}",
            Counter::ServeHotspotTilesComputed => "serve.tiles_computed{kind=hotspot}",
            Counter::ServeKdvTilesInvalidated => "serve.tiles_invalidated{kind=kdv}",
            Counter::ServeStkdvTilesInvalidated => "serve.tiles_invalidated{kind=stkdv}",
            Counter::ServeNkdvTilesInvalidated => "serve.tiles_invalidated{kind=nkdv}",
            Counter::ServeHotspotTilesInvalidated => "serve.tiles_invalidated{kind=hotspot}",
        }
    }
}

const N_COUNTERS: usize = Counter::ALL.len();

#[allow(clippy::declare_interior_mutable_const)] // array-init idiom
const ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTERS: [AtomicU64; N_COUNTERS] = [ZERO; N_COUNTERS];

/// Add `n` to a counter (no-op while the collector is disabled).
#[inline]
pub fn add(c: Counter, n: u64) {
    if crate::enabled() {
        COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Add one (no-op while disabled).
#[inline]
pub fn incr(c: Counter) {
    add(c, 1);
}

/// Current value of a counter (0 while nothing was recorded).
pub fn counter_value(c: Counter) -> u64 {
    COUNTERS[c as usize].load(Ordering::Relaxed)
}

/// Histograms over per-item sizes, log₂-bucketed: bucket `b` holds
/// values in `[2^(b−1)+1 … 2^b]` with bucket 0 holding `{0, 1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Rows+columns of each ordinary-kriging system (`k + 1`).
    KrigingSystemSize,
    /// Neighbours returned per DBSCAN ε-query.
    DbscanNeighborsPerQuery,
    /// Attempts per supervised dist tile (1 on the happy path).
    DistTileAttempts,
    /// Unique tiles per batched multi-tile request, after dedup.
    ServeBatchUniqueTiles,
    /// Layer segment-stack depth observed after each committed append
    /// (the tier invariant keeps this logarithmic in layer size).
    IngestSegmentCount,
    /// Estimated exact-path response time (µs) observed by each
    /// deadline-checked admission decision: `(inflight + 1) × EWMA`
    /// of recent exact tile computes.
    ServeQueueWait,
    /// Connections resident in the chosen worker's bounded queue at
    /// each successful enqueue (depth after the push).
    HttpQueueDepth,
    /// Tiles adopted per surviving node in each re-home pass (how
    /// evenly a dead node's range spreads over the survivors).
    ClusterRehomeBatch,
}

impl Hist {
    /// Every histogram, in export order.
    pub const ALL: [Hist; 8] = [
        Hist::KrigingSystemSize,
        Hist::DbscanNeighborsPerQuery,
        Hist::DistTileAttempts,
        Hist::ServeBatchUniqueTiles,
        Hist::IngestSegmentCount,
        Hist::ServeQueueWait,
        Hist::HttpQueueDepth,
        Hist::ClusterRehomeBatch,
    ];

    /// Stable dotted name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Hist::KrigingSystemSize => "interp.kriging_system_size",
            Hist::DbscanNeighborsPerQuery => "stats.dbscan_neighbors_per_query",
            Hist::DistTileAttempts => "dist.tile_attempts",
            Hist::ServeBatchUniqueTiles => "serve.batch_unique_tiles",
            Hist::IngestSegmentCount => "ingest.segment_count",
            Hist::ServeQueueWait => "serve.queue_wait",
            Hist::HttpQueueDepth => "http.queue_depth",
            Hist::ClusterRehomeBatch => "cluster.rehome_batch",
        }
    }
}

const N_HISTS: usize = Hist::ALL.len();
/// log₂ buckets cover the full `u64` range.
const N_BUCKETS: usize = 64;

struct HistSlot {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)] // array-init idiom
const EMPTY_SLOT: HistSlot = HistSlot {
    buckets: [ZERO; N_BUCKETS],
    count: ZERO,
    sum: ZERO,
};
static HISTS: [HistSlot; N_HISTS] = [EMPTY_SLOT; N_HISTS];

#[inline]
fn bucket_of(value: u64) -> usize {
    // 0 and 1 land in bucket 0; 2^(b-1)+1 ..= 2^b in bucket b; the
    // top bucket absorbs everything past 2^63.
    ((64 - value.saturating_sub(1).leading_zeros()) as usize).min(N_BUCKETS - 1)
}

/// Record one observation into a histogram (no-op while disabled).
#[inline]
pub fn record(h: Hist, value: u64) {
    if crate::enabled() {
        let slot = &HISTS[h as usize];
        slot.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(value, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    pub name: &'static str,
    pub count: u64,
    pub sum: u64,
    /// `(bucket_upper_bound, count)` for non-empty buckets, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Copy-and-reset every counter, returning `(name, value)` pairs in
/// [`Counter::ALL`] order.
pub(crate) fn take_counters() -> Vec<(&'static str, u64)> {
    Counter::ALL
        .iter()
        .map(|c| (c.name(), COUNTERS[*c as usize].swap(0, Ordering::Relaxed)))
        .collect()
}

/// Copy-and-reset every histogram.
pub(crate) fn take_hists() -> Vec<HistSnapshot> {
    Hist::ALL
        .iter()
        .map(|h| {
            let slot = &HISTS[*h as usize];
            let mut buckets = Vec::new();
            for (b, cell) in slot.buckets.iter().enumerate() {
                let n = cell.swap(0, Ordering::Relaxed);
                if n > 0 {
                    let hi = if b == 0 { 1 } else { 1u64 << b.min(63) };
                    buckets.push((hi, n));
                }
            }
            HistSnapshot {
                name: h.name(),
                count: slot.count.swap(0, Ordering::Relaxed),
                sum: slot.sum.swap(0, Ordering::Relaxed),
                buckets,
            }
        })
        .collect()
}

/// Zero every counter and histogram.
pub(crate) fn reset() {
    let _ = take_counters();
    let _ = take_hists();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        assert_eq!(bucket_of(8), 3);
        assert_eq!(bucket_of(9), 4);
        assert_eq!(bucket_of(1u64 << 62), 62);
        assert_eq!(bucket_of(u64::MAX), 63); // clamped into the top bucket
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Hist::ALL.iter().map(|h| h.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn hist_records_gated_and_aggregated() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::enable();
        for v in [1u64, 1, 4, 9] {
            record(Hist::KrigingSystemSize, v);
        }
        let snap = crate::drain();
        crate::disable();
        let h = snap
            .histograms()
            .iter()
            .find(|h| h.name == "interp.kriging_system_size")
            .unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 15);
        assert_eq!(h.buckets, vec![(1, 2), (4, 1), (16, 1)]);
        assert!((h.mean() - 3.75).abs() < 1e-12);
    }
}
