//! Property tests: the distributed layer must be exact and its
//! partition/halo accounting consistent on arbitrary inputs.

use lsga_core::{BBox, Epanechnikov, GridSpec, Point};
use lsga_dist::partition::assign_owners;
use lsga_dist::{distributed_k, distributed_kdv, make_tiles, PartitionStrategy};
use lsga_kfunc::{grid_k, KConfig};
use proptest::prelude::*;

fn arb_points(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Point::new(x, y)),
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_k_equals_single_node(
        pts in arb_points(150),
        s in 0.1f64..80.0,
        workers in 1usize..10,
        kd in any::<bool>(),
    ) {
        let strategy = if kd {
            PartitionStrategy::BalancedKd
        } else {
            PartitionStrategy::UniformBands
        };
        let cfg = KConfig::default();
        let (got, metrics) = distributed_k(&pts, s, cfg, workers, strategy);
        prop_assert_eq!(got, grid_k(&pts, s, cfg));
        let owned: usize = metrics.workers.iter().map(|w| w.owned_points).sum();
        prop_assert_eq!(owned, pts.len());
        for w in &metrics.workers {
            prop_assert!(w.shipped_points >= w.owned_points);
            prop_assert_eq!(w.bytes_shipped, w.shipped_points as u64 * 16);
        }
    }

    #[test]
    fn distributed_kdv_matches_reference(
        pts in arb_points(120),
        b in 1.0f64..40.0,
        workers in 1usize..8,
    ) {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 16, 16);
        let k = Epanechnikov::new(b);
        let reference = lsga_kdv::grid_pruned_kdv(&pts, spec, k, 1e-9);
        let (grid, _) =
            distributed_kdv(&pts, spec, k, 1e-9, workers, PartitionStrategy::BalancedKd);
        prop_assert!(grid.linf_diff(&reference) <= reference.max().max(1.0) * 1e-12);
    }

    #[test]
    fn tiles_cover_each_pixel_exactly_once(
        pts in arb_points(150),
        n in 1usize..24,
        nx in 1usize..30,
        ny in 1usize..30,
        kd in any::<bool>(),
    ) {
        // Painting check: stronger than the sum-of-areas invariant — it
        // catches overlapping tiles whose areas still add up.
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), nx, ny);
        let strategy = if kd {
            PartitionStrategy::BalancedKd
        } else {
            PartitionStrategy::UniformBands
        };
        let tiles = make_tiles(&spec, &pts, n, strategy);
        prop_assert!(!tiles.is_empty());
        prop_assert!(tiles.len() <= n.max(1));
        let mut paint = vec![0u32; spec.len()];
        for t in &tiles {
            prop_assert!(!t.is_empty(), "empty tile {t:?}");
            for iy in t.iy0..t.iy1 {
                for ix in t.ix0..t.ix1 {
                    paint[spec.index(ix, iy)] += 1;
                }
            }
        }
        prop_assert!(paint.iter().all(|c| *c == 1), "gap or overlap in cover");
    }

    #[test]
    fn owners_live_in_their_tile(
        pts in arb_points(200),
        n in 1usize..16,
        kd in any::<bool>(),
    ) {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 25, 25);
        let strategy = if kd {
            PartitionStrategy::BalancedKd
        } else {
            PartitionStrategy::UniformBands
        };
        let tiles = make_tiles(&spec, &pts, n, strategy);
        let owners = assign_owners(&spec, &tiles, &pts);
        prop_assert_eq!(owners.len(), pts.len());
        for (p, o) in pts.iter().zip(&owners) {
            prop_assert!((*o as usize) < tiles.len());
            let (ix, iy) = spec.pixel_of(p);
            prop_assert!(
                tiles[*o as usize].contains(ix, iy),
                "point {p:?} owned by tile {o} which does not contain its pixel ({ix}, {iy})"
            );
        }
    }

    #[test]
    fn degenerate_partitions_never_panic(
        pts in arb_points(40),
        n in 0usize..400,
        kd in any::<bool>(),
    ) {
        // Zero workers, more workers than pixels, tiny grids, empty point
        // sets: all must yield a valid exact cover, never a panic.
        let strategy = if kd {
            PartitionStrategy::BalancedKd
        } else {
            PartitionStrategy::UniformBands
        };
        for (nx, ny) in [(1, 1), (1, 7), (13, 1), (3, 3)] {
            let spec = GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), nx, ny);
            let tiles = make_tiles(&spec, &pts, n, strategy);
            let covered: usize = tiles.iter().map(|t| t.len()).sum();
            prop_assert_eq!(covered, spec.len());
            prop_assert!(tiles.len() <= spec.len(), "more tiles than pixels");
            let owners = assign_owners(&spec, &tiles, &pts);
            prop_assert!(owners.iter().all(|o| (*o as usize) < tiles.len()));
        }
    }

    #[test]
    fn tiles_partition_every_pixel(
        pts in arb_points(200),
        n in 1usize..20,
        nx in 2usize..40,
        ny in 2usize..40,
        kd in any::<bool>(),
    ) {
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), nx, ny);
        let strategy = if kd {
            PartitionStrategy::BalancedKd
        } else {
            PartitionStrategy::UniformBands
        };
        let tiles = make_tiles(&spec, &pts, n, strategy);
        let covered: usize = tiles.iter().map(|t| t.len()).sum();
        prop_assert_eq!(covered, spec.len());
        // No overlap: total coverage equals pixel count AND each tile is
        // within bounds.
        for t in &tiles {
            prop_assert!(t.ix1 <= nx && t.iy1 <= ny);
            prop_assert!(t.ix0 < t.ix1 && t.iy0 < t.iy1);
        }
    }
}
