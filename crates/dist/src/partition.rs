//! Spatial partitioning of a pixel grid into worker tiles.
//!
//! Tiles are **pixel rectangles** (half-open), so both the pixel raster
//! and the point set partition exactly: a pixel belongs to one tile, and
//! a point belongs to the tile of its containing pixel. This is the
//! discrete analogue of the grid/kd partitioners in distributed spatial
//! engines (Sedona, the paper's refs \[76, 106\]).

use lsga_core::{GridSpec, Point};

/// A half-open pixel rectangle `[ix0, ix1) × [iy0, iy1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PixelRect {
    pub ix0: usize,
    pub iy0: usize,
    pub ix1: usize,
    pub iy1: usize,
}

impl PixelRect {
    /// Number of pixels covered.
    #[inline]
    pub fn len(&self) -> usize {
        (self.ix1 - self.ix0) * (self.iy1 - self.iy0)
    }

    /// True when the rectangle covers no pixels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when pixel `(ix, iy)` is inside.
    #[inline]
    pub fn contains(&self, ix: usize, iy: usize) -> bool {
        ix >= self.ix0 && ix < self.ix1 && iy >= self.iy0 && iy < self.iy1
    }

    /// World-space bounds of the rectangle under `spec`.
    pub fn world_bounds(&self, spec: &GridSpec) -> lsga_core::BBox {
        lsga_core::BBox::new(
            spec.bbox.min_x + self.ix0 as f64 * spec.dx(),
            spec.bbox.min_y + self.iy0 as f64 * spec.dy(),
            spec.bbox.min_x + self.ix1 as f64 * spec.dx(),
            spec.bbox.min_y + self.iy1 as f64 * spec.dy(),
        )
    }
}

/// How the domain is split across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Contiguous horizontal bands of pixel rows — the trivial splitter;
    /// balanced in *pixels*, not in points.
    UniformBands,
    /// Recursive point-weighted median splits along the wider axis —
    /// balanced in *points*, the standard kd partitioner of distributed
    /// spatial systems.
    BalancedKd,
}

/// Split `spec` into `n` non-overlapping tiles covering every pixel.
/// `points` only influence [`PartitionStrategy::BalancedKd`]. `n` is
/// clamped to `1..=spec.len()`, so degenerate requests (zero workers,
/// more workers than pixels) never panic.
pub fn make_tiles(
    spec: &GridSpec,
    points: &[Point],
    n: usize,
    strategy: PartitionStrategy,
) -> Vec<PixelRect> {
    let n = n.max(1); // worker-path input, not a programmer error
    let full = PixelRect {
        ix0: 0,
        iy0: 0,
        ix1: spec.nx,
        iy1: spec.ny,
    };
    let n = n.min(spec.len()); // cannot hand out more tiles than pixels
    match strategy {
        PartitionStrategy::UniformBands => {
            let mut out = Vec::with_capacity(n);
            let rows = spec.ny;
            // When rows < n, fall back to splitting columns too — keep it
            // simple: distribute rows, and rows==0 bands become empty
            // (filtered) — instead distribute as evenly as possible and
            // merge the tail.
            let mut start = 0usize;
            for t in 0..n {
                let end = ((t + 1) * rows) / n;
                out.push(PixelRect {
                    ix0: 0,
                    iy0: start,
                    ix1: spec.nx,
                    iy1: end.max(start),
                });
                start = end;
            }
            // Guarantee full coverage even with rounding.
            if let Some(last) = out.last_mut() {
                last.iy1 = rows;
            }
            out.retain(|r| !r.is_empty());
            out
        }
        PartitionStrategy::BalancedKd => {
            // Per-pixel point counts, then weighted recursive splits.
            let mut counts = vec![0u32; spec.len()];
            for p in points {
                let (ix, iy) = spec.pixel_of(p);
                counts[spec.index(ix, iy)] += 1;
            }
            let mut out = Vec::with_capacity(n);
            split_recursive(spec, &counts, full, n, &mut out);
            out
        }
    }
}

fn rect_weight(spec: &GridSpec, counts: &[u32], r: &PixelRect) -> u64 {
    let mut w = 0u64;
    for iy in r.iy0..r.iy1 {
        for ix in r.ix0..r.ix1 {
            w += counts[spec.index(ix, iy)] as u64;
        }
    }
    w
}

fn split_recursive(
    spec: &GridSpec,
    counts: &[u32],
    rect: PixelRect,
    n: usize,
    out: &mut Vec<PixelRect>,
) {
    if n <= 1 || rect.len() <= 1 {
        out.push(rect);
        return;
    }
    let n_left = n / 2;
    let frac = n_left as f64 / n as f64;
    let total = rect_weight(spec, counts, &rect) as f64;
    // Split along the wider axis, falling back to the other when the
    // wider one is a single pixel thick.
    let w = rect.ix1 - rect.ix0;
    let h = rect.iy1 - rect.iy0;
    let split_x = if w >= 2 && (w >= h || h < 2) {
        true
    } else {
        debug_assert!(h >= 2);
        false
    };
    // Walk columns (or rows) until the cumulative weight fraction passes
    // frac; fall back to the geometric middle for empty regions.
    let (lo, hi) = if split_x {
        (rect.ix0, rect.ix1)
    } else {
        (rect.iy0, rect.iy1)
    };
    let mut cut = lo + ((hi - lo) as f64 * frac).round() as usize;
    if total > 0.0 {
        let mut acc = 0.0;
        let mut best = lo + 1;
        for c in lo..hi {
            let line = if split_x {
                PixelRect {
                    ix0: c,
                    ix1: c + 1,
                    iy0: rect.iy0,
                    iy1: rect.iy1,
                }
            } else {
                PixelRect {
                    ix0: rect.ix0,
                    ix1: rect.ix1,
                    iy0: c,
                    iy1: c + 1,
                }
            };
            acc += rect_weight(spec, counts, &line) as f64;
            best = c + 1;
            if acc >= frac * total {
                break;
            }
        }
        cut = best;
    }
    cut = cut.max(lo + 1).min(hi - 1);
    let (a, b) = if split_x {
        (
            PixelRect { ix1: cut, ..rect },
            PixelRect { ix0: cut, ..rect },
        )
    } else {
        (
            PixelRect { iy1: cut, ..rect },
            PixelRect { iy0: cut, ..rect },
        )
    };
    split_recursive(spec, counts, a, n_left, out);
    split_recursive(spec, counts, b, n - n_left, out);
}

/// Owner tile of every point: `owners[i]` is the index into `tiles` of
/// the tile whose pixel rectangle contains point `i`.
pub fn assign_owners(spec: &GridSpec, tiles: &[PixelRect], points: &[Point]) -> Vec<u32> {
    // Pixel -> tile lookup built once.
    let mut tile_of_pixel = vec![u32::MAX; spec.len()];
    for (t, r) in tiles.iter().enumerate() {
        for iy in r.iy0..r.iy1 {
            for ix in r.ix0..r.ix1 {
                debug_assert_eq!(tile_of_pixel[spec.index(ix, iy)], u32::MAX, "tile overlap");
                tile_of_pixel[spec.index(ix, iy)] = t as u32;
            }
        }
    }
    debug_assert!(tile_of_pixel.iter().all(|t| *t != u32::MAX), "coverage gap");
    points
        .iter()
        .map(|p| {
            let (ix, iy) = spec.pixel_of(p);
            tile_of_pixel[spec.index(ix, iy)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::BBox;

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 40, 40)
    }

    fn clustered_points() -> Vec<Point> {
        // 90% of mass in the lower-left quadrant.
        let mut pts = Vec::new();
        for i in 0..900 {
            let f = i as f64;
            pts.push(Point::new(
                12.0 + (f * 0.831).sin() * 10.0,
                12.0 + (f * 0.557).cos() * 10.0,
            ));
        }
        for i in 0..100 {
            let f = i as f64;
            pts.push(Point::new(
                70.0 + (f * 0.91).sin() * 25.0,
                70.0 + (f * 0.73).cos() * 25.0,
            ));
        }
        pts
    }

    fn assert_partition(tiles: &[PixelRect], spec: &GridSpec) {
        let covered: usize = tiles.iter().map(|t| t.len()).sum();
        assert_eq!(covered, spec.len(), "tiles must cover every pixel once");
        // No overlaps: assign_owners debug-asserts this.
        let _ = assign_owners(spec, tiles, &[]);
    }

    #[test]
    fn uniform_bands_partition_exactly() {
        for n in [1, 2, 3, 7, 16, 40] {
            let tiles = make_tiles(&spec(), &[], n, PartitionStrategy::UniformBands);
            assert!(tiles.len() <= n);
            assert_partition(&tiles, &spec());
        }
    }

    #[test]
    fn balanced_kd_partitions_exactly() {
        let pts = clustered_points();
        for n in [1, 2, 4, 5, 8, 13] {
            let tiles = make_tiles(&spec(), &pts, n, PartitionStrategy::BalancedKd);
            assert_eq!(tiles.len(), n);
            assert_partition(&tiles, &spec());
        }
    }

    #[test]
    fn balanced_kd_balances_clustered_load() {
        let pts = clustered_points();
        let n = 8;
        let kd = make_tiles(&spec(), &pts, n, PartitionStrategy::BalancedKd);
        let owners = assign_owners(&spec(), &kd, &pts);
        let mut loads = vec![0usize; n];
        for o in &owners {
            loads[*o as usize] += 1;
        }
        let max = *loads.iter().max().unwrap() as f64;
        let mean = pts.len() as f64 / n as f64;
        assert!(max / mean < 2.5, "kd imbalance too high: loads {loads:?}");

        // Uniform bands on the same data are much worse (most points sit
        // in the bottom band).
        let bands = make_tiles(&spec(), &pts, n, PartitionStrategy::UniformBands);
        let owners_b = assign_owners(&spec(), &bands, &pts);
        let mut loads_b = vec![0usize; bands.len()];
        for o in &owners_b {
            loads_b[*o as usize] += 1;
        }
        let max_b = *loads_b.iter().max().unwrap() as f64;
        assert!(
            max_b / mean > max / mean,
            "bands {loads_b:?} vs kd {loads:?}"
        );
    }

    #[test]
    fn owners_cover_all_points() {
        let pts = clustered_points();
        let tiles = make_tiles(&spec(), &pts, 6, PartitionStrategy::BalancedKd);
        let owners = assign_owners(&spec(), &tiles, &pts);
        assert_eq!(owners.len(), pts.len());
        for (p, o) in pts.iter().zip(&owners) {
            let (ix, iy) = spec().pixel_of(p);
            assert!(tiles[*o as usize].contains(ix, iy));
        }
    }

    #[test]
    fn zero_tiles_clamps_to_one_without_panicking() {
        // Regression: `make_tiles` used to assert `n >= 1`, aborting the
        // worker path on a degenerate request.
        for strategy in [
            PartitionStrategy::UniformBands,
            PartitionStrategy::BalancedKd,
        ] {
            let tiles = make_tiles(&spec(), &clustered_points(), 0, strategy);
            assert_eq!(tiles.len(), 1);
            assert_partition(&tiles, &spec());
        }
    }

    #[test]
    fn more_tiles_than_pixels_clamped() {
        let tiny = GridSpec::new(BBox::new(0.0, 0.0, 2.0, 2.0), 2, 2);
        let tiles = make_tiles(&tiny, &[], 64, PartitionStrategy::BalancedKd);
        assert!(tiles.len() <= 4);
        let covered: usize = tiles.iter().map(|t| t.len()).sum();
        assert_eq!(covered, 4);
    }

    #[test]
    fn world_bounds_align_with_pixels() {
        let s = spec();
        let r = PixelRect {
            ix0: 4,
            iy0: 8,
            ix1: 10,
            iy1: 12,
        };
        let wb = r.world_bounds(&s);
        assert_eq!(wb.min_x, 10.0);
        assert_eq!(wb.min_y, 20.0);
        assert_eq!(wb.max_x, 25.0);
        assert_eq!(wb.max_y, 30.0);
    }
}
