//! Deterministic fault injection for the simulated cluster.
//!
//! Real clusters straggle, crash, and lose boundary shipments; the
//! simulated cluster reproduces those unhappy paths *deterministically*
//! so that recovery can be property-tested. A [`FaultPlan`] is plain
//! data: a list of [`FaultEvent`]s, each naming the tile, the attempt
//! number, and the [`FaultKind`] to inject when the supervisor reaches
//! that (tile, attempt) pair. Plans are either built explicitly or
//! generated from a seed ([`FaultPlan::seeded`]), so every chaotic run
//! reproduces exactly — there is no wall-clock randomness anywhere in
//! the failure model.
//!
//! Time is simulated too: the supervisor advances a [`SimClock`] in
//! logical *ticks* (task durations, timeouts, and backoff delays are
//! all tick counts carried by [`RetryPolicy`]), which keeps the retry /
//! timeout schedule a pure function of `(plan, policy)`.

/// Named interception points in the worker loop where faults fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interception {
    /// While the halo shipment travels to the worker.
    ShipHalo,
    /// After the shipment arrives, before the task starts.
    TaskStart,
    /// While the task is running.
    TaskRun,
}

/// What goes wrong at an interception point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker dies before starting its attempt ([`Interception::TaskStart`]).
    /// Detected by the per-task timeout; the worker is marked dead and
    /// the tile is re-assigned to a survivor (halo re-shipped).
    CrashBeforeTask,
    /// The worker dies mid-task ([`Interception::TaskRun`]); any partial
    /// output is discarded and the tile is re-assigned to a survivor.
    CrashMidTask,
    /// The attempt takes `ticks` simulated ticks instead of the nominal
    /// [`RetryPolicy::task_ticks`] ([`Interception::TaskRun`]). If
    /// `ticks` exceeds the per-task timeout the supervisor abandons the
    /// straggler and retries; otherwise the attempt merely adds latency.
    Straggle { ticks: u64 },
    /// The halo shipment is lost in transit ([`Interception::ShipHalo`]).
    /// Detected by the shipment acknowledgement timeout; re-shipped on
    /// retry (and the re-shipped bytes are charged to the run metrics).
    DropHaloShipment,
    /// The task reports a transient error ([`Interception::TaskRun`]):
    /// supervisor-visible, retried with backoff.
    TaskError,
}

impl FaultKind {
    /// The interception point this fault fires at.
    pub fn interception(&self) -> Interception {
        match self {
            FaultKind::DropHaloShipment => Interception::ShipHalo,
            FaultKind::CrashBeforeTask => Interception::TaskStart,
            FaultKind::CrashMidTask | FaultKind::Straggle { .. } | FaultKind::TaskError => {
                Interception::TaskRun
            }
        }
    }

    /// True for faults that kill the executing worker.
    pub fn kills_worker(&self) -> bool {
        matches!(self, FaultKind::CrashBeforeTask | FaultKind::CrashMidTask)
    }
}

/// One injected fault: fires when `tile` runs its `attempt`-th attempt
/// (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    pub tile: usize,
    pub attempt: u32,
    pub kind: FaultKind,
}

/// A deterministic fault schedule for one distributed run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: the fault-free run.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builder: add one fault.
    pub fn with(mut self, tile: usize, attempt: u32, kind: FaultKind) -> Self {
        self.push(tile, attempt, kind);
        self
    }

    /// Add one fault. Later events for the same `(tile, attempt)` pair
    /// are ignored by [`FaultPlan::fault_at`] (first match wins), so a
    /// plan is unambiguous however it was built.
    pub fn push(&mut self, tile: usize, attempt: u32, kind: FaultKind) {
        self.events.push(FaultEvent {
            tile,
            attempt,
            kind,
        });
    }

    /// The fault injected at `(tile, attempt)`, if any.
    pub fn fault_at(&self, tile: usize, attempt: u32) -> Option<FaultKind> {
        self.events
            .iter()
            .find(|e| e.tile == tile && e.attempt == attempt)
            .map(|e| e.kind)
    }

    /// All scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Seeded pseudo-random plan over `n_tiles` tiles with `n_faults`
    /// events drawn from every [`FaultKind`] (crashes included), at
    /// attempts `0..3`. Deterministic: the same `(seed, n_tiles,
    /// n_faults)` always yields the same plan.
    pub fn seeded(seed: u64, n_tiles: usize, n_faults: usize) -> Self {
        let mut state = seed ^ 0x6c73_6761_2d66_6c74; // "lsga-flt"
        let mut plan = FaultPlan::none();
        if n_tiles == 0 {
            return plan;
        }
        for _ in 0..n_faults {
            let tile = (splitmix64(&mut state) % n_tiles as u64) as usize;
            let attempt = (splitmix64(&mut state) % 3) as u32;
            let kind = match splitmix64(&mut state) % 5 {
                0 => FaultKind::CrashBeforeTask,
                1 => FaultKind::CrashMidTask,
                2 => FaultKind::Straggle {
                    // Some below, some above the default 40-tick timeout.
                    ticks: 1 + splitmix64(&mut state) % 80,
                },
                3 => FaultKind::DropHaloShipment,
                _ => FaultKind::TaskError,
            };
            plan.push(tile, attempt, kind);
        }
        plan
    }

    /// Seeded plan restricted to faults that never kill a worker
    /// (stragglers, dropped shipments, transient errors), with at most
    /// two faults per tile: always recoverable under the default
    /// [`RetryPolicy`] for any worker count, which the chaos suite's
    /// bit-identity property relies on.
    pub fn seeded_recoverable(seed: u64, n_tiles: usize, n_faults: usize) -> Self {
        let mut state = seed ^ 0x6c73_6761_2d72_6563; // "lsga-rec"
        let mut plan = FaultPlan::none();
        if n_tiles == 0 {
            return plan;
        }
        let mut per_tile = vec![0u32; n_tiles];
        for _ in 0..n_faults {
            let tile = (splitmix64(&mut state) % n_tiles as u64) as usize;
            if per_tile[tile] >= 2 {
                continue;
            }
            // Consecutive attempts from 0: the fault is always reached.
            let attempt = per_tile[tile];
            per_tile[tile] += 1;
            let kind = match splitmix64(&mut state) % 3 {
                0 => FaultKind::Straggle {
                    ticks: 1 + splitmix64(&mut state) % 80,
                },
                1 => FaultKind::DropHaloShipment,
                _ => FaultKind::TaskError,
            };
            plan.push(tile, attempt, kind);
        }
        plan
    }
}

/// Retry/timeout configuration of the supervisor. All durations are
/// simulated ticks — the schedule is data, not wall-clock measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per tile (>= 1). When exhausted the tile is
    /// abandoned and reported in the coverage report.
    pub max_attempts: u32,
    /// Nominal duration of a healthy task attempt.
    pub task_ticks: u64,
    /// Per-attempt deadline: crashes, lost shipments, and stragglers
    /// beyond this are detected when it fires.
    pub timeout_ticks: u64,
    /// First retry delay; doubles (times `backoff_multiplier`) per
    /// subsequent retry.
    pub base_backoff_ticks: u64,
    /// Exponential backoff base.
    pub backoff_multiplier: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            task_ticks: 10,
            timeout_ticks: 40,
            base_backoff_ticks: 2,
            backoff_multiplier: 2,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay scheduled after failed attempt `attempt` (0-based):
    /// `base · multiplier^attempt`, saturating.
    pub fn backoff_after(&self, attempt: u32) -> u64 {
        self.base_backoff_ticks
            .saturating_mul(self.backoff_multiplier.saturating_pow(attempt))
    }
}

/// Injected logical clock: the supervisor's only notion of time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimClock {
    now: u64,
}

impl SimClock {
    pub fn advance(&mut self, ticks: u64) {
        self.now = self.now.saturating_add(ticks);
    }

    pub fn now(&self) -> u64 {
        self.now
    }
}

/// SplitMix64: the seeded plan generator's PRNG (the `rand` compat
/// crate is a dev-dependency only, and two lines of arithmetic keep the
/// library dependency-free).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_first_match_wins() {
        let plan = FaultPlan::none()
            .with(2, 0, FaultKind::TaskError)
            .with(2, 0, FaultKind::CrashMidTask)
            .with(1, 1, FaultKind::DropHaloShipment);
        assert_eq!(plan.fault_at(2, 0), Some(FaultKind::TaskError));
        assert_eq!(plan.fault_at(1, 1), Some(FaultKind::DropHaloShipment));
        assert_eq!(plan.fault_at(0, 0), None);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn interception_points() {
        assert_eq!(
            FaultKind::DropHaloShipment.interception(),
            Interception::ShipHalo
        );
        assert_eq!(
            FaultKind::CrashBeforeTask.interception(),
            Interception::TaskStart
        );
        for k in [
            FaultKind::CrashMidTask,
            FaultKind::Straggle { ticks: 5 },
            FaultKind::TaskError,
        ] {
            assert_eq!(k.interception(), Interception::TaskRun);
        }
        assert!(FaultKind::CrashBeforeTask.kills_worker());
        assert!(FaultKind::CrashMidTask.kills_worker());
        assert!(!FaultKind::TaskError.kills_worker());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(7, 8, 12);
        let b = FaultPlan::seeded(7, 8, 12);
        let c = FaultPlan::seeded(8, 8, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 12);
        for e in a.events() {
            assert!(e.tile < 8);
            assert!(e.attempt < 3);
        }
        assert!(FaultPlan::seeded(1, 0, 10).is_empty());
    }

    #[test]
    fn recoverable_plans_avoid_crashes_and_cap_per_tile() {
        for seed in 0..32u64 {
            let plan = FaultPlan::seeded_recoverable(seed, 6, 20);
            let mut per_tile = [0u32; 6];
            for e in plan.events() {
                assert!(!e.kind.kills_worker(), "seed {seed}: {:?}", e.kind);
                // Attempts are consecutive from 0 so every fault fires.
                assert_eq!(e.attempt, per_tile[e.tile]);
                per_tile[e.tile] += 1;
            }
            assert!(per_tile.iter().all(|c| *c <= 2));
        }
    }

    #[test]
    fn backoff_schedule_is_exponential_data() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_after(0), 2);
        assert_eq!(p.backoff_after(1), 4);
        assert_eq!(p.backoff_after(2), 8);
        let huge = RetryPolicy {
            base_backoff_ticks: u64::MAX,
            ..p
        };
        assert_eq!(huge.backoff_after(3), u64::MAX); // saturates
    }

    #[test]
    fn sim_clock_advances_and_saturates() {
        let mut c = SimClock::default();
        assert_eq!(c.now(), 0);
        c.advance(7);
        c.advance(3);
        assert_eq!(c.now(), 10);
        c.advance(u64::MAX);
        assert_eq!(c.now(), u64::MAX);
    }
}
