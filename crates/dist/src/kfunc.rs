//! Distributed K-function over the simulated cluster.
//!
//! Each worker owns the points of its tile and receives a halo of the
//! points within distance `s` of the tile bounds. The worker counts, for
//! each of its **owned** points `p_i`, every point `p_j` (owned or halo)
//! with `dist ≤ s`: each ordered pair `(i, j)` is counted exactly once —
//! by the owner of `i` — so no boundary deduplication pass is needed and
//! the global sum equals the single-node count exactly (the scheme of
//! the distributed Ripley's K in Zhang et al. \[106\]).

use crate::metrics::{RunMetrics, WorkerMetrics, BYTES_PER_POINT};
use crate::partition::{assign_owners, make_tiles, PartitionStrategy};
use lsga_core::par::{par_map, Threads};
use lsga_core::{GridSpec, Point};
use lsga_index::GridIndex;
use lsga_kfunc::KConfig;
use std::time::Instant;

/// Exact distributed K-function. Returns the global ordered-pair count
/// and the run metrics. Output equals `lsga_kfunc::grid_k` exactly.
pub fn distributed_k(
    points: &[Point],
    s: f64,
    cfg: KConfig,
    n_workers: usize,
    strategy: PartitionStrategy,
) -> (u64, RunMetrics) {
    if points.is_empty() {
        return (0, RunMetrics::default());
    }
    let n_workers = n_workers.max(1);
    // Partition over a virtual raster of the data bounds: resolution is
    // only a partitioning granularity, not a correctness knob.
    let bbox = lsga_core::BBox::of_points(points).inflate(1e-9);
    let spec = GridSpec::with_width(bbox, 128);
    let tiles = make_tiles(&spec, points, n_workers, strategy);
    let owners = assign_owners(&spec, &tiles, points);

    // Shipments: owned points and halo (anything within s of the tile).
    let mut owned: Vec<Vec<Point>> = vec![Vec::new(); tiles.len()];
    for (p, o) in points.iter().zip(&owners) {
        owned[*o as usize].push(*p);
    }
    let mut shipments: Vec<Vec<Point>> = Vec::with_capacity(tiles.len());
    for rect in &tiles {
        let halo = rect.world_bounds(&spec).inflate(s);
        shipments.push(
            points
                .iter()
                .filter(|p| halo.contains(p))
                .copied()
                .collect(),
        );
    }

    let wall_start = Instant::now();
    let results: Vec<(usize, u64, std::time::Duration)> =
        par_map(tiles.len(), 1, Threads::auto(), |t| {
            let mine = &owned[t];
            let local = &shipments[t];
            let start = Instant::now();
            let mut count = 0u64;
            if !local.is_empty() && !mine.is_empty() {
                let index = GridIndex::build(local, s.max(1e-12));
                for p in mine {
                    count += index.count_within(p, s) as u64;
                }
                // Every owned point matched itself once in the local
                // index; drop the self-pairs here and re-add them
                // globally if configured.
                count -= mine.len() as u64;
            }
            (t, count, start.elapsed())
        });
    let wall = wall_start.elapsed();

    let mut total = if cfg.include_self {
        points.len() as u64
    } else {
        0
    };
    let mut workers = Vec::with_capacity(tiles.len());
    for (t, count, compute) in results {
        total += count;
        workers.push(WorkerMetrics {
            worker: t,
            owned_work: owned[t].len(),
            owned_points: owned[t].len(),
            shipped_points: shipments[t].len(),
            bytes_shipped: shipments[t].len() as u64 * BYTES_PER_POINT,
            compute,
        });
    }
    workers.sort_by_key(|w| w.worker);
    (total, RunMetrics { workers, wall })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_kfunc::{grid_k, naive_k};

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new((f * 0.831).sin() * 40.0, (f * 0.557).cos() * 40.0)
            })
            .collect()
    }

    #[test]
    fn equals_single_node_exactly() {
        let pts = scatter(400);
        for cfg in [
            KConfig {
                include_self: false,
            },
            KConfig { include_self: true },
        ] {
            for s in [1.0, 5.0, 20.0, 100.0] {
                let want = naive_k(&pts, s, cfg);
                assert_eq!(grid_k(&pts, s, cfg), want);
                for strategy in [
                    PartitionStrategy::UniformBands,
                    PartitionStrategy::BalancedKd,
                ] {
                    for workers in [1, 3, 8] {
                        let (got, _) = distributed_k(&pts, s, cfg, workers, strategy);
                        assert_eq!(got, want, "s={s} {strategy:?} w={workers}");
                    }
                }
            }
        }
    }

    #[test]
    fn halo_volume_grows_with_s() {
        let pts = scatter(600);
        let cfg = KConfig::default();
        let (_, small) = distributed_k(&pts, 1.0, cfg, 6, PartitionStrategy::BalancedKd);
        let (_, large) = distributed_k(&pts, 25.0, cfg, 6, PartitionStrategy::BalancedKd);
        assert!(large.replicated_points() > small.replicated_points());
    }

    #[test]
    fn empty_dataset() {
        let (k, m) = distributed_k(
            &[],
            5.0,
            KConfig::default(),
            4,
            PartitionStrategy::UniformBands,
        );
        assert_eq!(k, 0);
        assert!(m.workers.is_empty());
    }

    #[test]
    fn coincident_points_at_boundaries() {
        // Duplicates stress the ownership rule: every ordered pair must
        // still be counted exactly once.
        let mut pts = vec![Point::new(0.0, 0.0); 10];
        pts.extend(scatter(50));
        let cfg = KConfig::default();
        let want = naive_k(&pts, 3.0, cfg);
        let (got, _) = distributed_k(&pts, 3.0, cfg, 5, PartitionStrategy::BalancedKd);
        assert_eq!(got, want);
    }
}
