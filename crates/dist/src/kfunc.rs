//! Distributed K-function over the simulated cluster.
//!
//! Each worker owns the points of its tile and receives a halo of the
//! points within distance `s` of the tile bounds. The worker counts, for
//! each of its **owned** points `p_i`, every point `p_j` (owned or halo)
//! with `dist ≤ s`: each ordered pair `(i, j)` is counted exactly once —
//! by the owner of `i` — so no boundary deduplication pass is needed and
//! the global sum equals the single-node count exactly (the scheme of
//! the distributed Ripley's K in Zhang et al. \[106\]).
//!
//! Both drivers run through the [`crate::supervisor`]:
//! [`distributed_k`] is the fault-free path, [`supervised_k`] injects a
//! seeded [`FaultPlan`] and recovers from it — the count is bit-identical
//! whenever every tile recovers, and otherwise the partial count is the
//! exact sum over the executed tiles (self-pairs included only for
//! points whose owning tile actually ran).

use crate::fault::{FaultPlan, RetryPolicy};
use crate::metrics::{RunMetrics, WorkerMetrics, BYTES_PER_POINT};
use crate::partition::{assign_owners, make_tiles, PartitionStrategy};
use crate::supervisor::{run_supervised, validate_points, CoverageReport};
use lsga_core::{GridSpec, LsgaError, Point, Result};
use lsga_index::GridIndex;
use lsga_kfunc::KConfig;
use std::time::Instant;

/// A possibly partial distributed K result: the pair count over the
/// executed tiles plus the exact account of what was covered.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialK {
    pub count: u64,
    pub coverage: CoverageReport,
}

/// The partitioning raster `distributed_k` uses internally for a point
/// set: the inflated data bounds at a fixed 128-column granularity.
/// Exposed so tests can reconstruct the exact tiles/owners of a run.
pub fn partition_spec_for_k(points: &[Point]) -> GridSpec {
    let bbox = lsga_core::BBox::of_points(points).inflate(1e-9);
    GridSpec::with_width(bbox, 128)
}

/// Exact distributed K-function. Returns the global ordered-pair count
/// and the run metrics. Output equals `lsga_kfunc::grid_k` exactly.
pub fn distributed_k(
    points: &[Point],
    s: f64,
    cfg: KConfig,
    n_workers: usize,
    strategy: PartitionStrategy,
) -> (u64, RunMetrics) {
    let (partial, metrics) = supervised_k_inner(
        points,
        s,
        cfg,
        n_workers,
        strategy,
        &FaultPlan::none(),
        &RetryPolicy::default(),
    );
    debug_assert!(partial.coverage.is_complete(), "fault-free run is total");
    (partial.count, metrics)
}

/// Distributed K-function under a fault plan, with supervisor recovery.
///
/// Validates the input (non-finite coordinates or a non-finite `s` are
/// a structured error — historically NaN points panicked deep inside
/// the partitioner), then runs the supervised cluster.
pub fn supervised_k(
    points: &[Point],
    s: f64,
    cfg: KConfig,
    n_workers: usize,
    strategy: PartitionStrategy,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<(PartialK, RunMetrics)> {
    let _span = lsga_obs::span("dist.supervised_k");
    validate_points(points)?;
    if !s.is_finite() || s < 0.0 {
        return Err(LsgaError::InvalidParameter {
            name: "s",
            message: format!("distance threshold must be finite and non-negative, got {s}"),
        });
    }
    Ok(supervised_k_inner(
        points, s, cfg, n_workers, strategy, plan, policy,
    ))
}

fn supervised_k_inner(
    points: &[Point],
    s: f64,
    cfg: KConfig,
    n_workers: usize,
    strategy: PartitionStrategy,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> (PartialK, RunMetrics) {
    if points.is_empty() {
        return (
            PartialK {
                count: 0,
                coverage: CoverageReport::default(),
            },
            RunMetrics::default(),
        );
    }
    let n_workers = n_workers.max(1);
    // Partition over a virtual raster of the data bounds: resolution is
    // only a partitioning granularity, not a correctness knob.
    let spec = partition_spec_for_k(points);
    let tiles = make_tiles(&spec, points, n_workers, strategy);
    let owners = assign_owners(&spec, &tiles, points);

    // Shipments: owned points and halo (anything within s of the tile).
    let mut owned: Vec<Vec<Point>> = vec![Vec::new(); tiles.len()];
    for (p, o) in points.iter().zip(&owners) {
        owned[*o as usize].push(*p);
    }
    let mut shipments: Vec<Vec<Point>> = Vec::with_capacity(tiles.len());
    for rect in &tiles {
        let halo = rect.world_bounds(&spec).inflate(s);
        shipments.push(
            points
                .iter()
                .filter(|p| halo.contains(p))
                .copied()
                .collect(),
        );
    }
    let shipment_sizes: Vec<usize> = shipments.iter().map(Vec::len).collect();

    let wall_start = Instant::now();
    let sup = run_supervised(&shipment_sizes, plan, policy, |t| -> Result<u64> {
        let mine = &owned[t];
        let local = &shipments[t];
        let mut count = 0u64;
        if !local.is_empty() && !mine.is_empty() {
            let index = GridIndex::build(local, s.max(1e-12));
            for p in mine {
                count += index.count_within(p, s) as u64;
            }
            // Every owned point matched itself once in the local index;
            // drop the self-pairs here and re-add them globally if
            // configured. The shipment always contains the owned points,
            // so the subtraction cannot underflow — but a defensive
            // checked_sub turns any future regression into a structured
            // task failure instead of a worker panic.
            count = count
                .checked_sub(mine.len() as u64)
                .ok_or_else(|| LsgaError::TaskFailed {
                    tile: t,
                    attempts: 1,
                    message: "self-pair count exceeded local pair count".into(),
                })?;
        }
        Ok(count)
    });
    let wall = wall_start.elapsed();

    // Merge in tile order; self-pairs only for executed tiles' owners.
    let mut total = 0u64;
    let mut workers = Vec::with_capacity(tiles.len());
    for (t, slot) in sup.per_tile.iter().enumerate() {
        let outcome = &sup.schedule.tiles[t];
        let compute = if let Some((count, compute)) = slot {
            total += count;
            if cfg.include_self {
                total += owned[t].len() as u64;
            }
            *compute
        } else {
            std::time::Duration::ZERO
        };
        workers.push(WorkerMetrics {
            worker: t,
            owned_work: owned[t].len(),
            owned_points: owned[t].len(),
            shipped_points: shipments[t].len(),
            bytes_shipped: shipments[t].len() as u64 * BYTES_PER_POINT,
            compute,
            retries: outcome.retries,
            timeouts: outcome.timeouts,
            reshipped_bytes: outcome.reshipped_bytes,
        });
    }
    workers.sort_by_key(|w| w.worker);
    let work: Vec<usize> = owned.iter().map(Vec::len).collect();
    let coverage = CoverageReport::from_schedule(&sup.schedule, &work);
    let metrics = RunMetrics {
        workers,
        wall,
        recovered_tiles: coverage.recovered_tiles,
        failed_tiles: coverage.abandoned.len(),
        dead_workers: sup.schedule.dead_workers.len(),
        sim_ticks: sup.schedule.sim_ticks,
    };
    (
        PartialK {
            count: total,
            coverage,
        },
        metrics,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use lsga_kfunc::{grid_k, naive_k};

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new((f * 0.831).sin() * 40.0, (f * 0.557).cos() * 40.0)
            })
            .collect()
    }

    #[test]
    fn equals_single_node_exactly() {
        let pts = scatter(400);
        for cfg in [
            KConfig {
                include_self: false,
            },
            KConfig { include_self: true },
        ] {
            for s in [1.0, 5.0, 20.0, 100.0] {
                let want = naive_k(&pts, s, cfg);
                assert_eq!(grid_k(&pts, s, cfg), want);
                for strategy in [
                    PartitionStrategy::UniformBands,
                    PartitionStrategy::BalancedKd,
                ] {
                    for workers in [1, 3, 8] {
                        let (got, _) = distributed_k(&pts, s, cfg, workers, strategy);
                        assert_eq!(got, want, "s={s} {strategy:?} w={workers}");
                    }
                }
            }
        }
    }

    #[test]
    fn halo_volume_grows_with_s() {
        let pts = scatter(600);
        let cfg = KConfig::default();
        let (_, small) = distributed_k(&pts, 1.0, cfg, 6, PartitionStrategy::BalancedKd);
        let (_, large) = distributed_k(&pts, 25.0, cfg, 6, PartitionStrategy::BalancedKd);
        assert!(large.replicated_points() > small.replicated_points());
    }

    #[test]
    fn empty_dataset() {
        let (k, m) = distributed_k(
            &[],
            5.0,
            KConfig::default(),
            4,
            PartitionStrategy::UniformBands,
        );
        assert_eq!(k, 0);
        assert!(m.workers.is_empty());
    }

    #[test]
    fn coincident_points_at_boundaries() {
        // Duplicates stress the ownership rule: every ordered pair must
        // still be counted exactly once.
        let mut pts = vec![Point::new(0.0, 0.0); 10];
        pts.extend(scatter(50));
        let cfg = KConfig::default();
        let want = naive_k(&pts, 3.0, cfg);
        let (got, _) = distributed_k(&pts, 3.0, cfg, 5, PartitionStrategy::BalancedKd);
        assert_eq!(got, want);
    }

    #[test]
    fn recovered_run_matches_fault_free_count() {
        let pts = scatter(300);
        let cfg = KConfig { include_self: true };
        let (want, _) = distributed_k(&pts, 8.0, cfg, 4, PartitionStrategy::UniformBands);
        let plan = FaultPlan::none()
            .with(1, 0, FaultKind::CrashBeforeTask)
            .with(2, 0, FaultKind::Straggle { ticks: 500 });
        let (partial, metrics) = supervised_k(
            &pts,
            8.0,
            cfg,
            4,
            PartitionStrategy::UniformBands,
            &plan,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(partial.coverage.is_complete());
        assert_eq!(partial.count, want);
        assert_eq!(metrics.total_retries(), 2);
        assert_eq!(metrics.dead_workers, 1);
    }

    #[test]
    fn abandoned_tile_gives_exact_partial_count() {
        let pts = scatter(300);
        let cfg = KConfig { include_self: true };
        // Fail tile 2 on every attempt: it must be abandoned, and the
        // partial count must equal the fault-free total minus exactly
        // tile 2's contribution (recomputable from the exposed spec).
        let policy = RetryPolicy::default();
        let mut plan = FaultPlan::none();
        for attempt in 0..policy.max_attempts {
            plan = plan.with(2, attempt, FaultKind::TaskError);
        }
        let (partial, metrics) = supervised_k(
            &pts,
            8.0,
            cfg,
            4,
            PartitionStrategy::UniformBands,
            &plan,
            &policy,
        )
        .unwrap();
        assert!(!partial.coverage.is_complete());
        assert_eq!(partial.coverage.abandoned, vec![2]);
        assert_eq!(metrics.failed_tiles, 1);

        // Recompute tile 2's contribution by hand.
        let spec = partition_spec_for_k(&pts);
        let tiles = make_tiles(&spec, &pts, 4, PartitionStrategy::UniformBands);
        let owners = assign_owners(&spec, &tiles, &pts);
        let mine: Vec<Point> = pts
            .iter()
            .zip(&owners)
            .filter(|(_, o)| **o == 2)
            .map(|(p, _)| *p)
            .collect();
        let mut tile2 = 0u64;
        for p in &mine {
            for q in &pts {
                if p.dist_sq(q) <= 64.0 {
                    tile2 += 1;
                }
            }
        }
        // `tile2` counted each owned point against the full set, which
        // includes itself: with include_self that is exactly the tile's
        // share of the fault-free total.
        let (want, _) = distributed_k(&pts, 8.0, cfg, 4, PartitionStrategy::UniformBands);
        assert_eq!(partial.count + tile2, want);
    }

    #[test]
    fn non_finite_inputs_are_structured_errors() {
        // Regression: a NaN coordinate used to trip the empty-bbox
        // assertion inside GridSpec (f64::min ignores NaN).
        let mut pts = scatter(10);
        pts.push(Point::new(0.0, f64::INFINITY));
        let err = supervised_k(
            &pts,
            5.0,
            KConfig::default(),
            2,
            PartitionStrategy::UniformBands,
            &FaultPlan::none(),
            &RetryPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, LsgaError::InvalidParameter { .. }));

        let err = supervised_k(
            &scatter(10),
            f64::NAN,
            KConfig::default(),
            2,
            PartitionStrategy::UniformBands,
            &FaultPlan::none(),
            &RetryPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, LsgaError::InvalidParameter { name: "s", .. }));
    }
}
