//! Distributed KDV over the simulated cluster.
//!
//! Each worker owns a tile of the output raster, receives the points
//! within its tile **inflated by the kernel radius** (the halo), and
//! rasterizes its tile independently with the grid-pruned exact method.
//! Stitching the tiles reproduces the single-node result exactly: any
//! point that can influence a tile's pixels lies within the inflated
//! bounds, so no kernel mass is lost at tile boundaries.
//!
//! Both drivers run through the [`crate::supervisor`]:
//! [`distributed_kdv`] is the fault-free path ([`FaultPlan::none`]),
//! [`supervised_kdv`] additionally injects a seeded [`FaultPlan`] and
//! recovers from it — bit-identically whenever every tile is
//! recoverable, and with an exact [`CoverageReport`] when not.

use crate::fault::{FaultPlan, RetryPolicy};
use crate::metrics::{RunMetrics, WorkerMetrics, BYTES_PER_POINT};
use crate::partition::{assign_owners, make_tiles, PartitionStrategy, PixelRect};
use crate::supervisor::{run_supervised, validate_points, CoverageReport};
use lsga_core::{DensityGrid, GridSpec, Kernel, LsgaError, Point, Result};
use lsga_index::GridIndex;
use std::time::Instant;

/// A possibly partial distributed KDV result: the stitched raster
/// (abandoned tiles left at 0.0) plus the exact account of what was
/// covered.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialKdv {
    pub grid: DensityGrid,
    pub coverage: CoverageReport,
}

/// Exact distributed KDV. Returns the stitched raster and the run's
/// communication/compute metrics. Output equals
/// `lsga_kdv::grid_pruned_kdv(points, spec, kernel, tail_eps)` exactly.
pub fn distributed_kdv<K: Kernel>(
    points: &[Point],
    spec: GridSpec,
    kernel: K,
    tail_eps: f64,
    n_workers: usize,
    strategy: PartitionStrategy,
) -> (DensityGrid, RunMetrics) {
    let (partial, metrics) = supervised_kdv_inner(
        points,
        spec,
        kernel,
        tail_eps,
        n_workers,
        strategy,
        &FaultPlan::none(),
        &RetryPolicy::default(),
    );
    debug_assert!(partial.coverage.is_complete(), "fault-free run is total");
    (partial.grid, metrics)
}

/// Distributed KDV under a fault plan, with supervisor recovery.
///
/// Validates the input (non-finite coordinates are a structured error,
/// not silent raster corruption), then runs the supervised cluster.
/// When every tile recovers, `grid` is bit-identical to the fault-free
/// [`distributed_kdv`] output; otherwise abandoned tiles stay zero and
/// are listed exactly in the coverage report.
#[allow(clippy::too_many_arguments)]
pub fn supervised_kdv<K: Kernel>(
    points: &[Point],
    spec: GridSpec,
    kernel: K,
    tail_eps: f64,
    n_workers: usize,
    strategy: PartitionStrategy,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<(PartialKdv, RunMetrics)> {
    let _span = lsga_obs::span("dist.supervised_kdv");
    validate_points(points)?;
    // The kernels assert 0 < tail_eps < 1 (and NaN fails the comparison
    // backwards): reject it here as a worker-path parameter error rather
    // than a panic deep inside effective_radius.
    if !(tail_eps > 0.0 && tail_eps < 1.0) {
        return Err(LsgaError::InvalidParameter {
            name: "tail_eps",
            message: format!("tail_eps must lie in (0, 1), got {tail_eps}"),
        });
    }
    let radius = kernel.effective_radius(tail_eps);
    if !radius.is_finite() {
        return Err(LsgaError::InvalidParameter {
            name: "tail_eps",
            message: format!("kernel effective radius is not finite ({radius})"),
        });
    }
    Ok(supervised_kdv_inner(
        points, spec, kernel, tail_eps, n_workers, strategy, plan, policy,
    ))
}

#[allow(clippy::too_many_arguments)]
fn supervised_kdv_inner<K: Kernel>(
    points: &[Point],
    spec: GridSpec,
    kernel: K,
    tail_eps: f64,
    n_workers: usize,
    strategy: PartitionStrategy,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> (PartialKdv, RunMetrics) {
    let n_workers = n_workers.max(1);
    let radius = kernel.effective_radius(tail_eps);
    let tiles = make_tiles(&spec, points, n_workers, strategy);
    let owners = assign_owners(&spec, &tiles, points);

    // "Ship" each worker its halo: points within the inflated tile.
    let mut shipments: Vec<Vec<Point>> = vec![Vec::new(); tiles.len()];
    let mut owned_counts = vec![0usize; tiles.len()];
    for o in &owners {
        owned_counts[*o as usize] += 1;
    }
    for (t, rect) in tiles.iter().enumerate() {
        let halo = rect.world_bounds(&spec).inflate(radius);
        shipments[t] = points
            .iter()
            .filter(|p| halo.contains(p))
            .copied()
            .collect();
    }
    let shipment_sizes: Vec<usize> = shipments.iter().map(Vec::len).collect();

    // Supervised workers rasterize their tiles concurrently on the
    // shared pool. The tile value is a pure function of the shipment,
    // and tiles write disjoint pixel rects, so stitching is
    // deterministic regardless of execution order, thread count, or how
    // many times the supervisor had to retry.
    let wall_start = Instant::now();
    let sup = run_supervised(&shipment_sizes, plan, policy, |t| -> Result<Vec<f64>> {
        let rect = &tiles[t];
        let local = &shipments[t];
        let r2 = radius * radius;
        let mut values = vec![0.0f64; rect.len()];
        if !local.is_empty() {
            let index = GridIndex::build(local, radius.max(1e-12));
            let width = rect.ix1 - rect.ix0;
            for iy in rect.iy0..rect.iy1 {
                let qy = spec.row_y(iy);
                for ix in rect.ix0..rect.ix1 {
                    let q = Point::new(spec.col_x(ix), qy);
                    let mut sum = 0.0;
                    index.for_each_candidate(&q, radius, |_, p| {
                        let d2 = q.dist_sq(p);
                        if d2 <= r2 {
                            sum += kernel.eval_sq(d2);
                        }
                    });
                    values[(iy - rect.iy0) * width + (ix - rect.ix0)] = sum;
                }
            }
        }
        Ok(values)
    });
    let wall = wall_start.elapsed();

    // Stitch executed tiles in tile order.
    let mut grid = DensityGrid::zeros(spec);
    let mut workers = Vec::with_capacity(tiles.len());
    for (t, slot) in sup.per_tile.iter().enumerate() {
        let rect: PixelRect = tiles[t];
        let outcome = &sup.schedule.tiles[t];
        let compute = if let Some((values, compute)) = slot {
            let width = rect.ix1 - rect.ix0;
            for iy in rect.iy0..rect.iy1 {
                for ix in rect.ix0..rect.ix1 {
                    grid.set(ix, iy, values[(iy - rect.iy0) * width + (ix - rect.ix0)]);
                }
            }
            *compute
        } else {
            std::time::Duration::ZERO
        };
        workers.push(WorkerMetrics {
            worker: t,
            owned_work: rect.len(),
            owned_points: owned_counts[t],
            shipped_points: shipments[t].len(),
            bytes_shipped: shipments[t].len() as u64 * BYTES_PER_POINT,
            compute,
            retries: outcome.retries,
            timeouts: outcome.timeouts,
            reshipped_bytes: outcome.reshipped_bytes,
        });
    }
    workers.sort_by_key(|w| w.worker);
    let work: Vec<usize> = tiles.iter().map(PixelRect::len).collect();
    let coverage = CoverageReport::from_schedule(&sup.schedule, &work);
    let metrics = RunMetrics {
        workers,
        wall,
        recovered_tiles: coverage.recovered_tiles,
        failed_tiles: coverage.abandoned.len(),
        dead_workers: sup.schedule.dead_workers.len(),
        sim_ticks: sup.schedule.sim_ticks,
    };
    (PartialKdv { grid, coverage }, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use lsga_core::{BBox, Epanechnikov, Gaussian};
    use lsga_kdv::grid_pruned_kdv;

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    30.0 + (f * 0.831).sin() * 25.0,
                    60.0 + (f * 0.557).cos() * 35.0,
                )
            })
            .collect()
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 32, 32)
    }

    #[test]
    fn equals_single_node_for_all_strategies_and_worker_counts() {
        let pts = scatter(400);
        let k = Epanechnikov::new(9.0);
        let reference = grid_pruned_kdv(&pts, spec(), k, 1e-9);
        for strategy in [
            PartitionStrategy::UniformBands,
            PartitionStrategy::BalancedKd,
        ] {
            for workers in [1, 2, 3, 8] {
                let (grid, metrics) = distributed_kdv(&pts, spec(), k, 1e-9, workers, strategy);
                assert!(
                    grid.linf_diff(&reference) <= reference.max() * 1e-12,
                    "{strategy:?} w={workers}"
                );
                assert!(!metrics.workers.is_empty());
                assert_eq!(metrics.total_retries(), 0);
                assert_eq!(metrics.failed_tiles, 0);
            }
        }
    }

    #[test]
    fn gaussian_truncation_consistent() {
        let pts = scatter(200);
        let k = Gaussian::new(7.0);
        let reference = grid_pruned_kdv(&pts, spec(), k, 1e-6);
        let (grid, _) = distributed_kdv(&pts, spec(), k, 1e-6, 4, PartitionStrategy::BalancedKd);
        assert!(grid.linf_diff(&reference) <= reference.max() * 1e-12);
    }

    #[test]
    fn halo_grows_with_bandwidth() {
        let pts = scatter(500);
        let narrow = distributed_kdv(
            &pts,
            spec(),
            Epanechnikov::new(2.0),
            1e-9,
            4,
            PartitionStrategy::UniformBands,
        )
        .1;
        let wide = distributed_kdv(
            &pts,
            spec(),
            Epanechnikov::new(30.0),
            1e-9,
            4,
            PartitionStrategy::UniformBands,
        )
        .1;
        assert!(
            wide.replicated_points() > narrow.replicated_points(),
            "narrow {} wide {}",
            narrow.replicated_points(),
            wide.replicated_points()
        );
        assert!(wide.total_bytes() > narrow.total_bytes());
    }

    #[test]
    fn ownership_partitions_points() {
        let pts = scatter(300);
        let (_, metrics) = distributed_kdv(
            &pts,
            spec(),
            Epanechnikov::new(5.0),
            1e-9,
            6,
            PartitionStrategy::BalancedKd,
        );
        let owned: usize = metrics.workers.iter().map(|w| w.owned_points).sum();
        assert_eq!(owned, 300);
        // Shipments always include the owned points.
        for w in &metrics.workers {
            assert!(w.shipped_points >= w.owned_points);
        }
    }

    #[test]
    fn empty_dataset() {
        let (grid, metrics) = distributed_kdv(
            &[],
            spec(),
            Epanechnikov::new(5.0),
            1e-9,
            4,
            PartitionStrategy::UniformBands,
        );
        assert_eq!(grid.sum(), 0.0);
        assert_eq!(metrics.total_bytes(), 0);
    }

    #[test]
    fn recovered_run_is_bit_identical() {
        let pts = scatter(250);
        let k = Epanechnikov::new(8.0);
        let (reference, _) =
            distributed_kdv(&pts, spec(), k, 1e-9, 4, PartitionStrategy::BalancedKd);
        let plan = FaultPlan::none()
            .with(0, 0, FaultKind::CrashMidTask)
            .with(2, 0, FaultKind::DropHaloShipment)
            .with(3, 0, FaultKind::TaskError);
        let (partial, metrics) = supervised_kdv(
            &pts,
            spec(),
            k,
            1e-9,
            4,
            PartitionStrategy::BalancedKd,
            &plan,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(partial.coverage.is_complete());
        assert_eq!(partial.coverage.recovered_tiles, 3);
        for (a, b) in partial.grid.values().iter().zip(reference.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(metrics.total_retries(), 3);
        assert_eq!(metrics.dead_workers, 1);
        assert!(metrics.total_reshipped_bytes() > 0);
        assert!(metrics.sim_ticks > RetryPolicy::default().task_ticks);
    }

    #[test]
    fn non_finite_points_are_a_structured_error() {
        // Regression: NaN coordinates used to bin silently into pixel
        // (0, 0) and corrupt the raster.
        let mut pts = scatter(10);
        pts.push(Point::new(f64::NAN, 5.0));
        let err = supervised_kdv(
            &pts,
            spec(),
            Epanechnikov::new(5.0),
            1e-9,
            2,
            PartitionStrategy::UniformBands,
            &FaultPlan::none(),
            &RetryPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, LsgaError::InvalidParameter { .. }));
    }

    #[test]
    fn non_finite_radius_is_a_structured_error() {
        // Regression: a NaN tail_eps produced a NaN effective radius and
        // nonsense halos downstream.
        let err = supervised_kdv(
            &scatter(10),
            spec(),
            Gaussian::new(5.0),
            f64::NAN,
            2,
            PartitionStrategy::UniformBands,
            &FaultPlan::none(),
            &RetryPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            LsgaError::InvalidParameter {
                name: "tail_eps",
                ..
            }
        ));
    }
}
