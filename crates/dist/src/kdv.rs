//! Distributed KDV over the simulated cluster.
//!
//! Each worker owns a tile of the output raster, receives the points
//! within its tile **inflated by the kernel radius** (the halo), and
//! rasterizes its tile independently with the grid-pruned exact method.
//! Stitching the tiles reproduces the single-node result exactly: any
//! point that can influence a tile's pixels lies within the inflated
//! bounds, so no kernel mass is lost at tile boundaries.

use crate::metrics::{RunMetrics, WorkerMetrics, BYTES_PER_POINT};
use crate::partition::{assign_owners, make_tiles, PartitionStrategy, PixelRect};
use lsga_core::par::{par_map, Threads};
use lsga_core::{DensityGrid, GridSpec, Kernel, Point};
use lsga_index::GridIndex;
use std::time::Instant;

/// Exact distributed KDV. Returns the stitched raster and the run's
/// communication/compute metrics. Output equals
/// `lsga_kdv::grid_pruned_kdv(points, spec, kernel, tail_eps)` exactly.
pub fn distributed_kdv<K: Kernel>(
    points: &[Point],
    spec: GridSpec,
    kernel: K,
    tail_eps: f64,
    n_workers: usize,
    strategy: PartitionStrategy,
) -> (DensityGrid, RunMetrics) {
    let n_workers = n_workers.max(1);
    let radius = kernel.effective_radius(tail_eps);
    let tiles = make_tiles(&spec, points, n_workers, strategy);
    let owners = assign_owners(&spec, &tiles, points);

    // "Ship" each worker its halo: points within the inflated tile.
    let mut shipments: Vec<Vec<Point>> = vec![Vec::new(); tiles.len()];
    let mut owned_counts = vec![0usize; tiles.len()];
    for o in &owners {
        owned_counts[*o as usize] += 1;
    }
    for (t, rect) in tiles.iter().enumerate() {
        let halo = rect.world_bounds(&spec).inflate(radius);
        shipments[t] = points
            .iter()
            .filter(|p| halo.contains(p))
            .copied()
            .collect();
    }

    // Workers rasterize their tiles concurrently on the shared pool.
    // Tiles write disjoint pixel rects, so stitching is deterministic
    // regardless of execution order.
    let wall_start = Instant::now();
    let results: Vec<(usize, Vec<f64>, std::time::Duration)> =
        par_map(tiles.len(), 1, Threads::auto(), |t| {
            let rect = &tiles[t];
            let local = &shipments[t];
            let start = Instant::now();
            let r2 = radius * radius;
            let mut values = vec![0.0f64; rect.len()];
            if !local.is_empty() {
                let index = GridIndex::build(local, radius.max(1e-12));
                let width = rect.ix1 - rect.ix0;
                for iy in rect.iy0..rect.iy1 {
                    let qy = spec.row_y(iy);
                    for ix in rect.ix0..rect.ix1 {
                        let q = Point::new(spec.col_x(ix), qy);
                        let mut sum = 0.0;
                        index.for_each_candidate(&q, radius, |_, p| {
                            let d2 = q.dist_sq(p);
                            if d2 <= r2 {
                                sum += kernel.eval_sq(d2);
                            }
                        });
                        values[(iy - rect.iy0) * width + (ix - rect.ix0)] = sum;
                    }
                }
            }
            (t, values, start.elapsed())
        });
    let wall = wall_start.elapsed();

    // Stitch.
    let mut grid = DensityGrid::zeros(spec);
    let mut workers = Vec::with_capacity(tiles.len());
    for (t, values, compute) in results {
        let rect: PixelRect = tiles[t];
        let width = rect.ix1 - rect.ix0;
        for iy in rect.iy0..rect.iy1 {
            for ix in rect.ix0..rect.ix1 {
                grid.set(ix, iy, values[(iy - rect.iy0) * width + (ix - rect.ix0)]);
            }
        }
        workers.push(WorkerMetrics {
            worker: t,
            owned_work: rect.len(),
            owned_points: owned_counts[t],
            shipped_points: shipments[t].len(),
            bytes_shipped: shipments[t].len() as u64 * BYTES_PER_POINT,
            compute,
        });
    }
    workers.sort_by_key(|w| w.worker);
    (grid, RunMetrics { workers, wall })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_core::{BBox, Epanechnikov, Gaussian};
    use lsga_kdv::grid_pruned_kdv;

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                Point::new(
                    30.0 + (f * 0.831).sin() * 25.0,
                    60.0 + (f * 0.557).cos() * 35.0,
                )
            })
            .collect()
    }

    fn spec() -> GridSpec {
        GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 32, 32)
    }

    #[test]
    fn equals_single_node_for_all_strategies_and_worker_counts() {
        let pts = scatter(400);
        let k = Epanechnikov::new(9.0);
        let reference = grid_pruned_kdv(&pts, spec(), k, 1e-9);
        for strategy in [
            PartitionStrategy::UniformBands,
            PartitionStrategy::BalancedKd,
        ] {
            for workers in [1, 2, 3, 8] {
                let (grid, metrics) = distributed_kdv(&pts, spec(), k, 1e-9, workers, strategy);
                assert!(
                    grid.linf_diff(&reference) <= reference.max() * 1e-12,
                    "{strategy:?} w={workers}"
                );
                assert!(!metrics.workers.is_empty());
            }
        }
    }

    #[test]
    fn gaussian_truncation_consistent() {
        let pts = scatter(200);
        let k = Gaussian::new(7.0);
        let reference = grid_pruned_kdv(&pts, spec(), k, 1e-6);
        let (grid, _) = distributed_kdv(&pts, spec(), k, 1e-6, 4, PartitionStrategy::BalancedKd);
        assert!(grid.linf_diff(&reference) <= reference.max() * 1e-12);
    }

    #[test]
    fn halo_grows_with_bandwidth() {
        let pts = scatter(500);
        let narrow = distributed_kdv(
            &pts,
            spec(),
            Epanechnikov::new(2.0),
            1e-9,
            4,
            PartitionStrategy::UniformBands,
        )
        .1;
        let wide = distributed_kdv(
            &pts,
            spec(),
            Epanechnikov::new(30.0),
            1e-9,
            4,
            PartitionStrategy::UniformBands,
        )
        .1;
        assert!(
            wide.replicated_points() > narrow.replicated_points(),
            "narrow {} wide {}",
            narrow.replicated_points(),
            wide.replicated_points()
        );
        assert!(wide.total_bytes() > narrow.total_bytes());
    }

    #[test]
    fn ownership_partitions_points() {
        let pts = scatter(300);
        let (_, metrics) = distributed_kdv(
            &pts,
            spec(),
            Epanechnikov::new(5.0),
            1e-9,
            6,
            PartitionStrategy::BalancedKd,
        );
        let owned: usize = metrics.workers.iter().map(|w| w.owned_points).sum();
        assert_eq!(owned, 300);
        // Shipments always include the owned points.
        for w in &metrics.workers {
            assert!(w.shipped_points >= w.owned_points);
        }
    }

    #[test]
    fn empty_dataset() {
        let (grid, metrics) = distributed_kdv(
            &[],
            spec(),
            Epanechnikov::new(5.0),
            1e-9,
            4,
            PartitionStrategy::UniformBands,
        );
        assert_eq!(grid.sum(), 0.0);
        assert_eq!(metrics.total_bytes(), 0);
    }
}
