//! # lsga-dist
//!
//! A **simulated distributed cluster** for the parallel/distributed
//! solution family the paper surveys (§2.2/§2.3: Spark-style KDV \[76\],
//! cloud K-function of Zhang et al. \[106\]).
//!
//! Real cluster deployments are unavailable in this environment, so the
//! substitution (DESIGN.md §1.5) reproduces the *algorithmic* content of
//! distributed geospatial analytics in-process:
//!
//! * **spatial partitioning** — [`partition`]: uniform pixel-row bands or
//!   balanced kd tiles (point-weighted median splits);
//! * **halo replication** — each worker receives its tile's owned points
//!   plus the boundary points within one kernel radius / distance
//!   threshold, exactly like a cluster broadcast of boundary data;
//! * **workers** — scoped OS threads, one per tile;
//! * **communication accounting** — [`metrics`]: per-worker shipped
//!   points, bytes (16 B per point: two `f64` coordinates), compute
//!   time, and load-imbalance summaries.
//!
//! Every distributed driver is *exact*: [`distributed_kdv`] matches the
//! single-node grid-pruned KDV bit-for-bit and [`distributed_k`] matches
//! the single-node K-function count, which the integration tests assert.

pub mod kdv;
pub mod kfunc;
pub mod metrics;
pub mod partition;

pub use kdv::distributed_kdv;
pub use kfunc::distributed_k;
pub use metrics::{RunMetrics, WorkerMetrics};
pub use partition::{make_tiles, PartitionStrategy, PixelRect};
