//! # lsga-dist
//!
//! A **simulated distributed cluster** for the parallel/distributed
//! solution family the paper surveys (§2.2/§2.3: Spark-style KDV \[76\],
//! cloud K-function of Zhang et al. \[106\]).
//!
//! Real cluster deployments are unavailable in this environment, so the
//! substitution (DESIGN.md §1.5) reproduces the *algorithmic* content of
//! distributed geospatial analytics in-process:
//!
//! * **spatial partitioning** — [`partition`]: uniform pixel-row bands or
//!   balanced kd tiles (point-weighted median splits);
//! * **halo replication** — each worker receives its tile's owned points
//!   plus the boundary points within one kernel radius / distance
//!   threshold, exactly like a cluster broadcast of boundary data;
//! * **workers** — scoped OS threads, one per tile;
//! * **communication accounting** — [`metrics`]: per-worker shipped
//!   points, bytes (16 B per point: two `f64` coordinates), compute
//!   time, and load-imbalance summaries;
//! * **failure model** — [`fault`]: deterministic, seeded fault plans
//!   (worker crashes, stragglers, lost halo shipments, transient task
//!   errors) injected at named interception points;
//! * **recovery** — [`supervisor`]: per-task timeouts, bounded
//!   deterministic exponential backoff on a simulated clock,
//!   re-assignment of dead workers' tiles to survivors (halo re-shipped
//!   and charged to the metrics), and graceful degradation to a partial
//!   result with an exact [`CoverageReport`] when retries are exhausted.
//!
//! Every distributed driver is *exact*: [`distributed_kdv`] matches the
//! single-node grid-pruned KDV bit-for-bit and [`distributed_k`] matches
//! the single-node K-function count, which the integration tests assert.
//! The supervised variants ([`supervised_kdv`], [`supervised_k`]) extend
//! that guarantee through failures: **any recoverable fault schedule
//! yields output bit-identical to the fault-free run** — the headline
//! invariant property-tested by `tests/chaos_recovery.rs`.

pub mod fault;
pub mod kdv;
pub mod kfunc;
pub mod metrics;
pub mod partition;
pub mod supervisor;

pub use fault::{FaultEvent, FaultKind, FaultPlan, Interception, RetryPolicy, SimClock};
pub use kdv::{distributed_kdv, supervised_kdv, PartialKdv};
pub use kfunc::{distributed_k, partition_spec_for_k, supervised_k, PartialK};
pub use metrics::{RunMetrics, WorkerMetrics};
pub use partition::{make_tiles, PartitionStrategy, PixelRect};
pub use supervisor::{
    plan_schedule, run_supervised, validate_points, CoverageReport, Schedule, Supervised,
    TileOutcome,
};
