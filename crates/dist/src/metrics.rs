//! Execution metrics of a simulated distributed run.
//!
//! Real distributed evaluations report wall time, shuffle volume, and
//! straggler behaviour; the simulated cluster records the same
//! quantities so the E12 experiments can expose the communication /
//! compute / balance trade-offs of the partitioning strategies.

use std::time::Duration;

/// Bytes shipped per point: two `f64` coordinates.
pub const BYTES_PER_POINT: u64 = 16;

/// Per-worker execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerMetrics {
    pub worker: usize,
    /// Pixels (KDV) or owned query points (K-function) this worker was
    /// responsible for.
    pub owned_work: usize,
    /// Points the worker owns by partition.
    pub owned_points: usize,
    /// Points shipped to the worker (owned + halo replicas).
    pub shipped_points: usize,
    /// Simulated communication volume.
    pub bytes_shipped: u64,
    /// Measured compute time of the worker's task.
    pub compute: Duration,
}

/// A whole distributed run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunMetrics {
    pub workers: Vec<WorkerMetrics>,
    /// Wall-clock time of the parallel section.
    pub wall: Duration,
}

impl RunMetrics {
    /// Total simulated communication volume.
    pub fn total_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.bytes_shipped).sum()
    }

    /// Total points shipped (owned + halo over all workers).
    pub fn total_shipped(&self) -> usize {
        self.workers.iter().map(|w| w.shipped_points).sum()
    }

    /// Halo replicas only (shipped − owned).
    pub fn replicated_points(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.shipped_points - w.owned_points)
            .sum()
    }

    /// Sum of worker compute times (the single-node-equivalent work).
    pub fn compute_sum(&self) -> Duration {
        self.workers.iter().map(|w| w.compute).sum()
    }

    /// Slowest worker (the critical path).
    pub fn compute_max(&self) -> Duration {
        self.workers
            .iter()
            .map(|w| w.compute)
            .max()
            .unwrap_or_default()
    }

    /// `max / mean` of worker compute times; 1.0 = perfectly balanced.
    pub fn load_imbalance(&self) -> f64 {
        if self.workers.is_empty() {
            return 1.0;
        }
        let max = self.compute_max().as_secs_f64();
        let mean = self.compute_sum().as_secs_f64() / self.workers.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(owned: usize, shipped: usize, ms: u64) -> WorkerMetrics {
        WorkerMetrics {
            worker: 0,
            owned_work: 0,
            owned_points: owned,
            shipped_points: shipped,
            bytes_shipped: shipped as u64 * BYTES_PER_POINT,
            compute: Duration::from_millis(ms),
        }
    }

    #[test]
    fn aggregates() {
        let run = RunMetrics {
            workers: vec![w(100, 120, 10), w(100, 130, 30)],
            wall: Duration::from_millis(31),
        };
        assert_eq!(run.total_shipped(), 250);
        assert_eq!(run.replicated_points(), 50);
        assert_eq!(run.total_bytes(), 250 * 16);
        assert_eq!(run.compute_sum(), Duration::from_millis(40));
        assert_eq!(run.compute_max(), Duration::from_millis(30));
        assert!((run.load_imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run() {
        let run = RunMetrics::default();
        assert_eq!(run.total_bytes(), 0);
        assert_eq!(run.load_imbalance(), 1.0);
        assert_eq!(run.compute_max(), Duration::ZERO);
    }
}
