//! Execution metrics of a simulated distributed run.
//!
//! Real distributed evaluations report wall time, shuffle volume, and
//! straggler behaviour; the simulated cluster records the same
//! quantities so the E12 experiments can expose the communication /
//! compute / balance trade-offs of the partitioning strategies.

use std::time::Duration;

/// Bytes shipped per point: two `f64` coordinates.
pub const BYTES_PER_POINT: u64 = 16;

/// Per-worker execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerMetrics {
    pub worker: usize,
    /// Pixels (KDV) or owned query points (K-function) this worker was
    /// responsible for.
    pub owned_work: usize,
    /// Points the worker owns by partition.
    pub owned_points: usize,
    /// Points shipped to the worker (owned + halo replicas).
    pub shipped_points: usize,
    /// Simulated communication volume of the initial shipment.
    pub bytes_shipped: u64,
    /// Measured compute time of the worker's task.
    pub compute: Duration,
    /// Failed attempts the supervisor retried (0 on the happy path).
    pub retries: u32,
    /// Per-task deadlines that fired for this tile.
    pub timeouts: u32,
    /// Extra bytes from halo re-shipments (crash re-assignment or a
    /// dropped shipment) — on top of `bytes_shipped`.
    pub reshipped_bytes: u64,
}

/// A whole distributed run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunMetrics {
    pub workers: Vec<WorkerMetrics>,
    /// Wall-clock time of the parallel section.
    pub wall: Duration,
    /// Tiles that needed at least one retry but completed.
    pub recovered_tiles: usize,
    /// Tiles abandoned after the retry budget (0 = complete result).
    pub failed_tiles: usize,
    /// Workers that died during the run.
    pub dead_workers: usize,
    /// Simulated elapsed ticks of the supervised run (slowest tile).
    pub sim_ticks: u64,
}

impl RunMetrics {
    /// Total simulated communication volume, including recovery
    /// re-shipments.
    pub fn total_bytes(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.bytes_shipped + w.reshipped_bytes)
            .sum()
    }

    /// Failed attempts retried across all tiles.
    pub fn total_retries(&self) -> u32 {
        self.workers.iter().map(|w| w.retries).sum()
    }

    /// Per-task deadlines fired across all tiles.
    pub fn total_timeouts(&self) -> u32 {
        self.workers.iter().map(|w| w.timeouts).sum()
    }

    /// Bytes spent re-shipping halos during recovery.
    pub fn total_reshipped_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.reshipped_bytes).sum()
    }

    /// Total points shipped (owned + halo over all workers).
    pub fn total_shipped(&self) -> usize {
        self.workers.iter().map(|w| w.shipped_points).sum()
    }

    /// Halo replicas only (shipped − owned).
    pub fn replicated_points(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.shipped_points - w.owned_points)
            .sum()
    }

    /// Sum of worker compute times (the single-node-equivalent work).
    pub fn compute_sum(&self) -> Duration {
        self.workers.iter().map(|w| w.compute).sum()
    }

    /// Slowest worker (the critical path).
    pub fn compute_max(&self) -> Duration {
        self.workers
            .iter()
            .map(|w| w.compute)
            .max()
            .unwrap_or_default()
    }

    /// `max / mean` of worker compute times; 1.0 = perfectly balanced.
    pub fn load_imbalance(&self) -> f64 {
        if self.workers.is_empty() {
            return 1.0;
        }
        let max = self.compute_max().as_secs_f64();
        let mean = self.compute_sum().as_secs_f64() / self.workers.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(owned: usize, shipped: usize, ms: u64) -> WorkerMetrics {
        WorkerMetrics {
            worker: 0,
            owned_work: 0,
            owned_points: owned,
            shipped_points: shipped,
            bytes_shipped: shipped as u64 * BYTES_PER_POINT,
            compute: Duration::from_millis(ms),
            retries: 0,
            timeouts: 0,
            reshipped_bytes: 0,
        }
    }

    #[test]
    fn aggregates() {
        let run = RunMetrics {
            workers: vec![w(100, 120, 10), w(100, 130, 30)],
            wall: Duration::from_millis(31),
            ..Default::default()
        };
        assert_eq!(run.total_shipped(), 250);
        assert_eq!(run.replicated_points(), 50);
        assert_eq!(run.total_bytes(), 250 * 16);
        assert_eq!(run.compute_sum(), Duration::from_millis(40));
        assert_eq!(run.compute_max(), Duration::from_millis(30));
        assert!((run.load_imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn recovery_aggregates() {
        let mut a = w(10, 12, 5);
        a.retries = 2;
        a.timeouts = 1;
        a.reshipped_bytes = 12 * BYTES_PER_POINT;
        let b = w(10, 10, 5);
        let run = RunMetrics {
            workers: vec![a, b],
            wall: Duration::from_millis(10),
            recovered_tiles: 1,
            failed_tiles: 0,
            dead_workers: 1,
            sim_ticks: 64,
        };
        assert_eq!(run.total_retries(), 2);
        assert_eq!(run.total_timeouts(), 1);
        assert_eq!(run.total_reshipped_bytes(), 12 * 16);
        // total_bytes charges the re-shipments on top of the base halo.
        assert_eq!(run.total_bytes(), (12 + 10) * 16 + 12 * 16);
        assert_eq!(run.recovered_tiles, 1);
        assert_eq!(run.sim_ticks, 64);
    }

    #[test]
    fn empty_run() {
        let run = RunMetrics::default();
        assert_eq!(run.total_bytes(), 0);
        assert_eq!(run.load_imbalance(), 1.0);
        assert_eq!(run.compute_max(), Duration::ZERO);
    }
}
