//! The supervisor: deterministic failure detection and recovery.
//!
//! Wraps the distributed drivers with per-task timeouts, bounded
//! exponential-backoff retry, re-assignment of a dead worker's tile to a
//! survivor (re-shipping the halo and charging the bytes), and graceful
//! degradation — when a tile exhausts its retry budget the run still
//! returns, with the tile listed in an exact [`CoverageReport`] instead
//! of a panic.
//!
//! # Determinism argument
//!
//! Recovery never changes results because the two phases are separated:
//!
//! 1. **Scheduling** ([`plan_schedule`]) is a *sequential* simulation
//!    over tiles in index order, driven only by the [`FaultPlan`], the
//!    [`RetryPolicy`], and the injected [`SimClock`] — no wall-clock, no
//!    thread timing. Which attempts fail, which workers die, where tiles
//!    are re-assigned, and what backoff accrues are all pure data.
//! 2. **Execution** runs each *scheduled-successful* tile's task on the
//!    shared thread pool. A task is a pure function of its shipment, so
//!    re-running it on any worker, after any number of simulated
//!    failures, produces the same bits. Results merge in tile order.
//!
//! Hence **any recoverable fault schedule yields output bit-identical to
//! the fault-free run**, for every thread count — the invariant
//! `tests/chaos_recovery.rs` property-tests.

use crate::fault::{FaultKind, FaultPlan, RetryPolicy, SimClock};
use crate::metrics::BYTES_PER_POINT;
use lsga_core::par::{par_map, Threads};
use lsga_core::{LsgaError, Point, Result};
use lsga_obs::{self as obs, Counter, Hist};
use std::time::{Duration, Instant};

/// What happened to one tile over the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct TileOutcome {
    pub tile: usize,
    /// Worker the tile (and its halo) was initially assigned to.
    pub initial_worker: usize,
    /// Worker whose attempt finally succeeded; `None` = abandoned.
    pub final_worker: Option<usize>,
    /// Attempts started (>= 1 unless no worker survived to try).
    pub attempts: u32,
    /// Failed attempts that were retried or exhausted the budget.
    pub retries: u32,
    /// Per-attempt deadlines that fired (crash detection, lost-shipment
    /// acknowledgement, straggler abandonment).
    pub timeouts: u32,
    /// Halo re-shipments (re-assignment to a new worker, or replacement
    /// of a dropped shipment).
    pub reshipments: u32,
    /// Bytes those re-shipments cost.
    pub reshipped_bytes: u64,
    /// Simulated elapsed ticks for this tile (attempt durations,
    /// timeouts, and backoff delays).
    pub ticks: u64,
    /// Every failure observed along the way, in order.
    pub errors: Vec<LsgaError>,
}

impl TileOutcome {
    /// True when some attempt succeeded.
    pub fn executed(&self) -> bool {
        self.final_worker.is_some()
    }

    /// True when the tile needed at least one retry but succeeded.
    pub fn recovered(&self) -> bool {
        self.executed() && self.retries > 0
    }
}

/// The deterministic recovery schedule of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schedule {
    pub tiles: Vec<TileOutcome>,
    /// Workers that died during the run, ascending.
    pub dead_workers: Vec<usize>,
    /// Simulated wall-clock: the slowest tile's tick count (tiles run on
    /// distinct workers concurrently).
    pub sim_ticks: u64,
}

/// Exact account of what a partial result covers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoverageReport {
    pub total_tiles: usize,
    /// Tiles whose task ran to completion.
    pub executed_tiles: usize,
    /// Executed tiles that needed at least one retry.
    pub recovered_tiles: usize,
    /// Abandoned tile indices, ascending.
    pub abandoned: Vec<usize>,
    /// Work units covered (pixels for KDV, owned points for the
    /// K-function).
    pub covered_work: usize,
    pub total_work: usize,
    /// Final error of each abandoned tile, aligned with `abandoned`.
    pub failures: Vec<LsgaError>,
}

impl CoverageReport {
    /// True when every tile executed: the result equals the fault-free
    /// run bit-for-bit.
    pub fn is_complete(&self) -> bool {
        self.abandoned.is_empty()
    }

    /// Fraction of work units covered (1.0 for an empty run).
    pub fn fraction(&self) -> f64 {
        if self.total_work == 0 {
            1.0
        } else {
            self.covered_work as f64 / self.total_work as f64
        }
    }

    /// Build from a schedule plus per-tile work-unit sizes.
    pub fn from_schedule(schedule: &Schedule, work: &[usize]) -> Self {
        assert_eq!(schedule.tiles.len(), work.len());
        let mut report = CoverageReport {
            total_tiles: work.len(),
            total_work: work.iter().sum(),
            ..CoverageReport::default()
        };
        for (outcome, w) in schedule.tiles.iter().zip(work) {
            if outcome.executed() {
                report.executed_tiles += 1;
                report.covered_work += w;
                if outcome.recovered() {
                    report.recovered_tiles += 1;
                }
            } else {
                report.abandoned.push(outcome.tile);
                report
                    .failures
                    .push(
                        outcome
                            .errors
                            .last()
                            .cloned()
                            .unwrap_or(LsgaError::TaskFailed {
                                tile: outcome.tile,
                                attempts: outcome.attempts,
                                message: "abandoned".into(),
                            }),
                    );
            }
        }
        report
    }
}

/// Phase 1: simulate the failure/recovery schedule. Sequential over
/// tiles in index order; the outcome is a pure function of
/// `(shipment_sizes, plan, policy)`.
///
/// The simulated cluster pairs worker `t` with tile `t`; when a worker
/// dies its tile retries on the next surviving worker in rotation
/// `(t+1, t+2, …) mod n`, which requires re-shipping the halo. When no
/// worker survives, the tile is abandoned.
pub fn plan_schedule(shipment_sizes: &[usize], plan: &FaultPlan, policy: &RetryPolicy) -> Schedule {
    let n = shipment_sizes.len();
    let mut dead = vec![false; n];
    let mut tiles = Vec::with_capacity(n);
    for t in 0..n {
        let mut out = TileOutcome {
            tile: t,
            initial_worker: t,
            final_worker: None,
            attempts: 0,
            retries: 0,
            timeouts: 0,
            reshipments: 0,
            reshipped_bytes: 0,
            ticks: 0,
            errors: Vec::new(),
        };
        let mut clock = SimClock::default();
        let bytes = shipment_sizes[t] as u64 * BYTES_PER_POINT;
        // The initial shipment (to worker t, charged in the base
        // metrics) is only valid if worker t is still alive and the
        // shipment is not dropped en route.
        let mut halo_holder = if dead[t] { None } else { Some(t) };
        for attempt in 0..policy.max_attempts {
            let Some(worker) = (0..n).map(|k| (t + k) % n).find(|w| !dead[*w]) else {
                out.errors.push(LsgaError::TaskFailed {
                    tile: t,
                    attempts: out.attempts,
                    message: "no surviving workers to re-assign to".into(),
                });
                break;
            };
            if halo_holder != Some(worker) {
                out.reshipments += 1;
                out.reshipped_bytes += bytes;
                halo_holder = Some(worker);
            }
            out.attempts += 1;
            let fault = plan.fault_at(t, attempt);
            match fault {
                None => {
                    clock.advance(policy.task_ticks);
                    out.final_worker = Some(worker);
                    break;
                }
                Some(FaultKind::Straggle { ticks }) if ticks <= policy.timeout_ticks => {
                    // Slow but within the deadline: pure latency.
                    clock.advance(ticks);
                    out.final_worker = Some(worker);
                    break;
                }
                Some(kind) => {
                    let error = match kind {
                        FaultKind::Straggle { .. } => {
                            out.timeouts += 1;
                            clock.advance(policy.timeout_ticks);
                            LsgaError::Timeout {
                                what: "straggling task abandoned",
                                ticks: policy.timeout_ticks,
                            }
                        }
                        FaultKind::CrashBeforeTask | FaultKind::CrashMidTask => {
                            dead[worker] = true;
                            halo_holder = None; // died with the data
                            out.timeouts += 1;
                            clock.advance(policy.timeout_ticks);
                            LsgaError::WorkerLost { worker, tile: t }
                        }
                        FaultKind::DropHaloShipment => {
                            halo_holder = None;
                            out.timeouts += 1;
                            clock.advance(policy.timeout_ticks);
                            LsgaError::ShipmentLost { tile: t }
                        }
                        FaultKind::TaskError => {
                            // The task ran and reported failure itself.
                            clock.advance(policy.task_ticks);
                            LsgaError::TaskFailed {
                                tile: t,
                                attempts: out.attempts,
                                message: "transient task error".into(),
                            }
                        }
                    };
                    out.errors.push(error);
                    out.retries += 1;
                    if attempt + 1 < policy.max_attempts {
                        clock.advance(policy.backoff_after(attempt));
                    } else {
                        out.errors.push(LsgaError::TaskFailed {
                            tile: t,
                            attempts: out.attempts,
                            message: "retry budget exhausted".into(),
                        });
                    }
                }
            }
        }
        out.ticks = clock.now();
        tiles.push(out);
    }
    let dead_workers: Vec<usize> = (0..n).filter(|w| dead[*w]).collect();
    let sim_ticks = tiles.iter().map(|o| o.ticks).max().unwrap_or(0);
    // Publish the schedule's recovery activity to the metrics registry.
    // The simulation above is sequential, so these totals are trivially
    // identical for every thread count.
    for o in &tiles {
        obs::add(Counter::DistRetries, o.retries as u64);
        obs::add(Counter::DistTimeouts, o.timeouts as u64);
        obs::add(Counter::DistReshipments, o.reshipments as u64);
        obs::add(Counter::DistReshippedBytes, o.reshipped_bytes);
        obs::record(Hist::DistTileAttempts, o.attempts as u64);
        for _ in 0..o.reshipments {
            obs::instant("dist.reshipment");
        }
    }
    Schedule {
        tiles,
        dead_workers,
        sim_ticks,
    }
}

/// Per-tile result of a supervised run: the computed value and its
/// measured compute time, or `None` for abandoned tiles.
pub struct Supervised<T> {
    pub per_tile: Vec<Option<(T, Duration)>>,
    pub schedule: Schedule,
}

/// Phase 2: run `compute(tile)` for every scheduled-successful tile on
/// the shared thread pool and merge with the schedule. A task returning
/// `Err` (a real, non-injected failure) demotes its tile to abandoned —
/// a supervisor-visible failure, never a panic.
pub fn run_supervised<T, F>(
    shipment_sizes: &[usize],
    plan: &FaultPlan,
    policy: &RetryPolicy,
    compute: F,
) -> Supervised<T>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let _span = obs::span("dist.run_supervised");
    let mut schedule = plan_schedule(shipment_sizes, plan, policy);
    let raw: Vec<Option<(Result<T>, Duration)>> =
        par_map(shipment_sizes.len(), 1, Threads::auto(), |t| {
            if schedule.tiles[t].executed() {
                let start = Instant::now();
                let r = compute(t);
                Some((r, start.elapsed()))
            } else {
                None
            }
        });
    let mut per_tile = Vec::with_capacity(raw.len());
    for (t, slot) in raw.into_iter().enumerate() {
        match slot {
            Some((Ok(v), d)) => per_tile.push(Some((v, d))),
            Some((Err(e), _)) => {
                schedule.tiles[t].final_worker = None;
                schedule.tiles[t].errors.push(e);
                per_tile.push(None);
            }
            None => per_tile.push(None),
        }
    }
    Supervised { per_tile, schedule }
}

/// Reject non-finite coordinates up front: on the worker path they
/// would silently corrupt rasters (KDV) or panic while deriving the
/// partition raster (K-function). Converted from a panic/corruption
/// site to a structured error.
pub fn validate_points(points: &[Point]) -> Result<()> {
    for (i, p) in points.iter().enumerate() {
        if !p.x.is_finite() || !p.y.is_finite() {
            return Err(LsgaError::InvalidParameter {
                name: "points",
                message: format!("point {i} has non-finite coordinates ({}, {})", p.x, p.y),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy::default()
    }

    #[test]
    fn fault_free_schedule_is_trivial() {
        let s = plan_schedule(&[10, 20, 30], &FaultPlan::none(), &policy());
        assert_eq!(s.tiles.len(), 3);
        for (t, o) in s.tiles.iter().enumerate() {
            assert_eq!(o.final_worker, Some(t));
            assert_eq!(o.attempts, 1);
            assert_eq!(o.retries, 0);
            assert_eq!(o.reshipped_bytes, 0);
            assert_eq!(o.ticks, policy().task_ticks);
            assert!(o.errors.is_empty());
        }
        assert!(s.dead_workers.is_empty());
        assert_eq!(s.sim_ticks, policy().task_ticks);
    }

    #[test]
    fn crash_reassigns_to_survivor_and_reships() {
        let plan = FaultPlan::none().with(1, 0, FaultKind::CrashMidTask);
        let s = plan_schedule(&[5, 7, 9], &plan, &policy());
        let o = &s.tiles[1];
        assert_eq!(o.final_worker, Some(2), "next live worker in rotation");
        assert_eq!(o.attempts, 2);
        assert_eq!(o.retries, 1);
        assert_eq!(o.timeouts, 1);
        assert_eq!(o.reshipments, 1);
        assert_eq!(o.reshipped_bytes, 7 * BYTES_PER_POINT);
        assert_eq!(
            o.ticks,
            policy().timeout_ticks + policy().backoff_after(0) + policy().task_ticks
        );
        assert!(matches!(
            o.errors[0],
            LsgaError::WorkerLost { worker: 1, tile: 1 }
        ));
        assert_eq!(s.dead_workers, vec![1]);
        assert!(o.recovered());
    }

    #[test]
    fn tile_whose_initial_worker_died_earlier_reships_at_first_attempt() {
        // Tile 0 crashes worker 0's replacement chain: kill worker 1 via
        // tile 0's first retry landing there.
        let plan = FaultPlan::none()
            .with(0, 0, FaultKind::CrashBeforeTask) // kills worker 0
            .with(0, 1, FaultKind::CrashBeforeTask); // retry on worker 1 dies too
        let s = plan_schedule(&[4, 4, 4], &plan, &policy());
        assert_eq!(s.tiles[0].final_worker, Some(2));
        assert_eq!(s.dead_workers, vec![0, 1]);
        // Tile 1's initial worker (1) is dead before it ever ran: its
        // first attempt must re-ship to worker 2.
        let o1 = &s.tiles[1];
        assert_eq!(o1.final_worker, Some(2));
        assert_eq!(o1.attempts, 1);
        assert_eq!(o1.reshipments, 1);
        assert!(!o1.recovered(), "no failed attempts, just a re-ship");
    }

    #[test]
    fn dropped_shipment_is_reshipped_to_same_worker() {
        let plan = FaultPlan::none().with(0, 0, FaultKind::DropHaloShipment);
        let s = plan_schedule(&[11], &plan, &policy());
        let o = &s.tiles[0];
        assert_eq!(o.final_worker, Some(0));
        assert_eq!(o.reshipments, 1);
        assert_eq!(o.reshipped_bytes, 11 * BYTES_PER_POINT);
        assert!(matches!(o.errors[0], LsgaError::ShipmentLost { tile: 0 }));
        assert!(s.dead_workers.is_empty());
    }

    #[test]
    fn straggler_below_timeout_is_latency_only() {
        let plan = FaultPlan::none().with(0, 0, FaultKind::Straggle { ticks: 33 });
        let s = plan_schedule(&[3, 3], &plan, &policy());
        let o = &s.tiles[0];
        assert_eq!(o.retries, 0);
        assert_eq!(o.timeouts, 0);
        assert_eq!(o.ticks, 33);
        assert!(o.executed() && !o.recovered());
        assert_eq!(s.sim_ticks, 33, "slowest tile dominates");
    }

    #[test]
    fn straggler_over_timeout_fires_and_retries() {
        let plan = FaultPlan::none().with(0, 0, FaultKind::Straggle { ticks: 1000 });
        let s = plan_schedule(&[3], &plan, &policy());
        let o = &s.tiles[0];
        assert_eq!(o.timeouts, 1);
        assert_eq!(o.retries, 1);
        assert!(o.executed());
        assert_eq!(
            o.ticks,
            policy().timeout_ticks + policy().backoff_after(0) + policy().task_ticks
        );
        assert!(matches!(o.errors[0], LsgaError::Timeout { .. }));
    }

    #[test]
    fn exhausted_budget_abandons_with_structured_errors() {
        let mut plan = FaultPlan::none();
        for attempt in 0..policy().max_attempts {
            plan.push(0, attempt, FaultKind::TaskError);
        }
        let s = plan_schedule(&[2], &plan, &policy());
        let o = &s.tiles[0];
        assert!(!o.executed());
        assert_eq!(o.attempts, policy().max_attempts);
        assert!(matches!(
            o.errors.last(),
            Some(LsgaError::TaskFailed { .. })
        ));
        let report = CoverageReport::from_schedule(&s, &[100]);
        assert_eq!(report.abandoned, vec![0]);
        assert_eq!(report.covered_work, 0);
        assert_eq!(report.fraction(), 0.0);
        assert!(!report.is_complete());
        assert_eq!(report.failures.len(), 1);
    }

    #[test]
    fn no_survivors_abandons_remaining_tiles() {
        // Single worker; it crashes: nothing left to retry on.
        let plan = FaultPlan::none().with(0, 0, FaultKind::CrashBeforeTask);
        let s = plan_schedule(&[6], &plan, &policy());
        let o = &s.tiles[0];
        assert!(!o.executed());
        assert_eq!(o.attempts, 1, "one attempt, then no survivors");
        assert_eq!(s.dead_workers, vec![0]);
        assert!(o
            .errors
            .iter()
            .any(|e| matches!(e, LsgaError::TaskFailed { .. })));
    }

    #[test]
    fn schedule_is_deterministic() {
        let plan = FaultPlan::seeded(99, 4, 9);
        let a = plan_schedule(&[8, 9, 10, 11], &plan, &policy());
        let b = plan_schedule(&[8, 9, 10, 11], &plan, &policy());
        assert_eq!(a, b);
    }

    #[test]
    fn run_supervised_demotes_compute_errors() {
        let sizes = [1usize, 1, 1];
        let sup = run_supervised(&sizes, &FaultPlan::none(), &policy(), |t| {
            if t == 1 {
                Err(LsgaError::TaskFailed {
                    tile: t,
                    attempts: 1,
                    message: "real failure".into(),
                })
            } else {
                Ok(t * 10)
            }
        });
        assert_eq!(sup.per_tile[0].as_ref().map(|(v, _)| *v), Some(0));
        assert!(sup.per_tile[1].is_none());
        assert_eq!(sup.per_tile[2].as_ref().map(|(v, _)| *v), Some(20));
        assert!(!sup.schedule.tiles[1].executed());
        let report = CoverageReport::from_schedule(&sup.schedule, &[1, 1, 1]);
        assert_eq!(report.abandoned, vec![1]);
    }

    #[test]
    fn validate_points_flags_non_finite() {
        assert!(validate_points(&[Point::new(1.0, 2.0)]).is_ok());
        let err = validate_points(&[Point::new(1.0, f64::NAN)]).unwrap_err();
        assert!(matches!(err, LsgaError::InvalidParameter { .. }));
        let err = validate_points(&[Point::new(f64::INFINITY, 0.0)]).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn coverage_report_complete_run() {
        let s = plan_schedule(&[1, 1], &FaultPlan::none(), &policy());
        let r = CoverageReport::from_schedule(&s, &[30, 70]);
        assert!(r.is_complete());
        assert_eq!(r.fraction(), 1.0);
        assert_eq!(r.covered_work, 100);
        assert_eq!(r.recovered_tiles, 0);
        // Empty run counts as fully covered.
        let empty = CoverageReport::from_schedule(&Schedule::default(), &[]);
        assert!(empty.is_complete());
        assert_eq!(empty.fraction(), 1.0);
    }
}
