//! # lsga-data
//!
//! Synthetic location datasets and plain-text I/O.
//!
//! The paper's deployments analyze the Hong Kong COVID-19 dataset, the
//! Chicago crime dataset (7.68 M points) and the NYC taxi dataset (165 M
//! points). None of these can ship with the repository, so this crate
//! provides parametric generators that reproduce the *point-pattern
//! statistics* those analyses depend on (see DESIGN.md §1.5):
//!
//! * [`uniform_points`] — complete spatial randomness (CSR), the null
//!   model of the K-function plot (Def. 3's random datasets `R_l`);
//! * [`gaussian_mixture`] / [`gaussian_mixture_labeled`] — hotspot
//!   mixtures (crime/epidemic-like clustering) with known ground truth;
//! * [`neyman_scott`] — the classical parent–child cluster process;
//! * [`hardcore_points`] — inhibited ("dispersed") patterns, the third
//!   regime a K-function plot distinguishes;
//! * [`taxi_like`] — heavy multi-hotspot + background mixture emulating
//!   pick-up records;
//! * [`epidemic_waves`] — spatiotemporal outbreaks whose hotspot location
//!   drifts across waves (the paper's Fig. 4 scenario);
//! * [`clustered_on_network`] — network-constrained clustered events for
//!   NKDV / network K-function experiments;
//! * [`csv`] — minimal deterministic CSV read/write for points.
//!
//! Every generator is deterministic in its `seed`.

pub mod csv;
pub mod generators;

pub use generators::{
    clustered_on_network, epidemic_waves, gaussian_mixture, gaussian_mixture_labeled,
    hardcore_points, neyman_scott, taxi_like, thinning_sample, uniform_points,
    uniform_timed_points, Hotspot, Wave,
};
