//! Parametric point-process generators.

use lsga_core::{BBox, Point, TimedPoint};
use lsga_network::{sample_on_network, EdgePosition, RoadNetwork, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A circular Gaussian hotspot component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    pub center: Point,
    /// Standard deviation of the isotropic Gaussian spread.
    pub sigma: f64,
    /// Relative weight among the mixture components.
    pub weight: f64,
}

/// A spatiotemporal outbreak wave: a hotspot active around `t_peak`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wave {
    pub hotspot: Hotspot,
    pub t_peak: f64,
    /// Standard deviation of event times around the peak.
    pub t_sigma: f64,
}

/// Draw a standard normal via Box–Muller (keeps the dependency surface to
/// `rand`'s uniform generator only).
fn randn(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// `n` points uniform in `bbox`: complete spatial randomness, the null
/// model the K-function plot simulates (Def. 3).
pub fn uniform_points(n: usize, bbox: BBox, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(bbox.min_x..=bbox.max_x),
                rng.gen_range(bbox.min_y..=bbox.max_y),
            )
        })
        .collect()
}

/// `n` spatiotemporal points uniform in `bbox × [t_min, t_max]`: the null
/// model of the spatiotemporal K-function plot (Eq. 9–10).
pub fn uniform_timed_points(
    n: usize,
    bbox: BBox,
    t_min: f64,
    t_max: f64,
    seed: u64,
) -> Vec<TimedPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            TimedPoint::new(
                rng.gen_range(bbox.min_x..=bbox.max_x),
                rng.gen_range(bbox.min_y..=bbox.max_y),
                rng.gen_range(t_min..=t_max),
            )
        })
        .collect()
}

/// `n` points from a mixture of Gaussian hotspots, rejection-clipped to
/// `bbox`. Weights need not be normalized. Panics on an empty hotspot
/// list or non-positive weights.
pub fn gaussian_mixture(n: usize, hotspots: &[Hotspot], bbox: BBox, seed: u64) -> Vec<Point> {
    gaussian_mixture_labeled(n, hotspots, bbox, seed).0
}

/// Like [`gaussian_mixture`], additionally returning the generating
/// component index of every point (ground truth for clustering
/// experiments, E15).
pub fn gaussian_mixture_labeled(
    n: usize,
    hotspots: &[Hotspot],
    bbox: BBox,
    seed: u64,
) -> (Vec<Point>, Vec<usize>) {
    assert!(!hotspots.is_empty(), "need at least one hotspot");
    assert!(
        hotspots.iter().all(|h| h.weight > 0.0 && h.sigma > 0.0),
        "hotspot weights and sigmas must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let total_w: f64 = hotspots.iter().map(|h| h.weight).sum();
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    while points.len() < n {
        // Choose a component by weight.
        let mut r = rng.gen_range(0.0..total_w);
        let mut ci = hotspots.len() - 1;
        for (i, h) in hotspots.iter().enumerate() {
            if r < h.weight {
                ci = i;
                break;
            }
            r -= h.weight;
        }
        let h = &hotspots[ci];
        let p = Point::new(
            h.center.x + h.sigma * randn(&mut rng),
            h.center.y + h.sigma * randn(&mut rng),
        );
        if bbox.contains(&p) {
            points.push(p);
            labels.push(ci);
        }
    }
    (points, labels)
}

/// Neyman–Scott cluster process: `n_parents` parent locations uniform in
/// `bbox`, each spawning `Poisson(mean_children)`-ish children (here:
/// exactly `mean_children` rounded, which keeps sizes deterministic)
/// displaced by an isotropic Gaussian of spread `sigma`. Children falling
/// outside `bbox` are re-drawn.
pub fn neyman_scott(
    n_parents: usize,
    mean_children: f64,
    sigma: f64,
    bbox: BBox,
    seed: u64,
) -> Vec<Point> {
    assert!(n_parents > 0, "need at least one parent");
    assert!(sigma > 0.0 && mean_children >= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..n_parents {
        let parent = Point::new(
            rng.gen_range(bbox.min_x..=bbox.max_x),
            rng.gen_range(bbox.min_y..=bbox.max_y),
        );
        // Geometric jitter of the litter size around the mean (±50%).
        let k = (mean_children * rng.gen_range(0.5..1.5)).round().max(1.0) as usize;
        let mut placed = 0;
        while placed < k {
            let c = Point::new(
                parent.x + sigma * randn(&mut rng),
                parent.y + sigma * randn(&mut rng),
            );
            if bbox.contains(&c) {
                out.push(c);
                placed += 1;
            }
        }
    }
    out
}

/// Hard-core (inhibited) pattern: dart throwing with a minimum pairwise
/// distance — the "dispersed" regime of the K-function plot. May return
/// fewer than `n` points when the box saturates; gives up after
/// `50 · n` failed darts.
pub fn hardcore_points(n: usize, min_dist: f64, bbox: BBox, seed: u64) -> Vec<Point> {
    assert!(min_dist > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Point> = Vec::with_capacity(n);
    // Grid occupancy for O(1) conflict checks.
    let cell = min_dist;
    let nx = ((bbox.width() / cell).ceil() as usize).max(1);
    let ny = ((bbox.height() / cell).ceil() as usize).max(1);
    let mut cells: Vec<Vec<u32>> = vec![Vec::new(); nx * ny];
    let cell_of = |p: &Point| -> (usize, usize) {
        (
            (((p.x - bbox.min_x) / cell) as usize).min(nx - 1),
            (((p.y - bbox.min_y) / cell) as usize).min(ny - 1),
        )
    };
    let mut failures = 0usize;
    let d2 = min_dist * min_dist;
    while out.len() < n && failures < 50 * n {
        let p = Point::new(
            rng.gen_range(bbox.min_x..=bbox.max_x),
            rng.gen_range(bbox.min_y..=bbox.max_y),
        );
        let (cx, cy) = cell_of(&p);
        let mut ok = true;
        'check: for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let x = cx as i64 + dx;
                let y = cy as i64 + dy;
                if x < 0 || y < 0 || x >= nx as i64 || y >= ny as i64 {
                    continue;
                }
                for &i in &cells[y as usize * nx + x as usize] {
                    if out[i as usize].dist_sq(&p) < d2 {
                        ok = false;
                        break 'check;
                    }
                }
            }
        }
        if ok {
            cells[cy * nx + cx].push(out.len() as u32);
            out.push(p);
        } else {
            failures += 1;
        }
    }
    out
}

/// A taxi-pickup-like pattern: a handful of heavy hotspots (transit hubs)
/// over a diffuse uniform background. `hotspot_fraction ∈ [0, 1]` of the
/// points come from hotspots.
pub fn taxi_like(n: usize, bbox: BBox, hotspot_fraction: f64, seed: u64) -> Vec<Point> {
    assert!((0.0..=1.0).contains(&hotspot_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    // Hub placement: deterministic in the same seed.
    let n_hubs = 6;
    let hubs: Vec<Hotspot> = (0..n_hubs)
        .map(|_| Hotspot {
            center: Point::new(
                rng.gen_range(bbox.min_x..=bbox.max_x),
                rng.gen_range(bbox.min_y..=bbox.max_y),
            ),
            sigma: 0.02 * bbox.width().max(bbox.height()),
            weight: rng.gen_range(0.5..2.0),
        })
        .collect();
    let n_hot = (n as f64 * hotspot_fraction).round() as usize;
    let mut pts = gaussian_mixture(n_hot, &hubs, bbox, seed.wrapping_add(1));
    pts.extend(uniform_points(n - n_hot, bbox, seed.wrapping_add(2)));
    pts
}

/// Spatiotemporal outbreak data: each wave is a hotspot active around its
/// peak time. Reproduces the paper's Fig. 4 phenomenon — the dominant
/// outbreak region changes between time slices.
pub fn epidemic_waves(n: usize, waves: &[Wave], bbox: BBox, seed: u64) -> Vec<TimedPoint> {
    assert!(!waves.is_empty(), "need at least one wave");
    let mut rng = StdRng::seed_from_u64(seed);
    let total_w: f64 = waves.iter().map(|w| w.hotspot.weight).sum();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let mut r = rng.gen_range(0.0..total_w);
        let mut wi = waves.len() - 1;
        for (i, w) in waves.iter().enumerate() {
            if r < w.hotspot.weight {
                wi = i;
                break;
            }
            r -= w.hotspot.weight;
        }
        let w = &waves[wi];
        let p = Point::new(
            w.hotspot.center.x + w.hotspot.sigma * randn(&mut rng),
            w.hotspot.center.y + w.hotspot.sigma * randn(&mut rng),
        );
        if bbox.contains(&p) {
            out.push(TimedPoint {
                point: p,
                t: w.t_peak + w.t_sigma * randn(&mut rng),
            });
        }
    }
    out
}

/// Sample points from an inhomogeneous intensity surface by thinning
/// (Lewis–Shedler): candidates drawn uniformly over the grid's bbox are
/// accepted with probability `intensity(pixel) / max intensity`. This
/// closes the loop between the estimators and the generators — a KDV
/// raster (or any non-negative grid) can be resampled into a synthetic
/// point pattern with the same spatial structure.
///
/// Returns up to `n` accepted points; gives up after `1000 · n`
/// candidates (only reachable for near-degenerate surfaces).
pub fn thinning_sample(intensity: &lsga_core::DensityGrid, n: usize, seed: u64) -> Vec<Point> {
    let spec = *intensity.spec();
    let max = intensity.max();
    let mut out = Vec::with_capacity(n);
    if max <= 0.0 || n == 0 {
        return out;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut attempts = 0usize;
    while out.len() < n && attempts < 1000 * n {
        attempts += 1;
        let p = Point::new(
            rng.gen_range(spec.bbox.min_x..=spec.bbox.max_x),
            rng.gen_range(spec.bbox.min_y..=spec.bbox.max_y),
        );
        let (ix, iy) = spec.pixel_of(&p);
        if rng.gen_range(0.0..=1.0) * max <= intensity.at(ix, iy) {
            out.push(p);
        }
    }
    out
}

/// Clustered events on a road network: `n_clusters` seed positions drawn
/// length-uniformly, each spawning `per_cluster` children placed by a
/// random walk along the network whose length is folded-normal with
/// spread `sigma` — so children are close to the seed *in network
/// distance*, which is exactly the structure network K-functions detect.
pub fn clustered_on_network(
    net: &RoadNetwork,
    n_clusters: usize,
    per_cluster: usize,
    sigma: f64,
    seed: u64,
) -> Vec<EdgePosition> {
    assert!(n_clusters > 0 && per_cluster > 0 && sigma > 0.0);
    let seeds = sample_on_network(net, n_clusters, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9e37_79b9));
    let mut out = Vec::with_capacity(n_clusters * per_cluster);
    for s in &seeds {
        for _ in 0..per_cluster {
            let walk_len = (randn(&mut rng) * sigma).abs();
            out.push(random_walk(net, s, walk_len, &mut rng));
        }
    }
    out
}

/// Walk `dist` along the network from `start`, choosing uniformly among
/// the neighbours at each vertex (allowing backtracking; dead-end
/// vertices reflect).
fn random_walk(
    net: &RoadNetwork,
    start: &EdgePosition,
    dist: f64,
    rng: &mut StdRng,
) -> EdgePosition {
    let mut edge = start.edge;
    let mut offset = start.offset;
    // Direction: +1 toward v, −1 toward u.
    let mut dir: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    let mut remaining = dist;
    // Bound the number of hops to keep pathological walks finite.
    for _ in 0..10_000 {
        let len = net.edge(edge).length;
        let room = if dir > 0.0 { len - offset } else { offset };
        if remaining <= room {
            offset += dir * remaining;
            return EdgePosition { edge, offset };
        }
        remaining -= room;
        // Arrive at a vertex; hop to a random incident edge.
        let at: VertexId = if dir > 0.0 {
            net.edge(edge).v
        } else {
            net.edge(edge).u
        };
        let nbrs: Vec<_> = net.neighbors(at).collect();
        if nbrs.is_empty() {
            return EdgePosition {
                edge,
                offset: if dir > 0.0 { len } else { 0.0 },
            };
        }
        let (_, next_edge) = nbrs[rng.gen_range(0..nbrs.len())];
        edge = next_edge;
        // Entering the next edge from whichever endpoint equals `at`.
        if net.edge(edge).u == at {
            offset = 0.0;
            dir = 1.0;
        } else {
            offset = net.edge(edge).length;
            dir = -1.0;
        }
    }
    EdgePosition { edge, offset }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsga_network::grid_network;

    fn bbox() -> BBox {
        BBox::new(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn uniform_respects_bbox_and_seed() {
        let a = uniform_points(500, bbox(), 3);
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|p| bbox().contains(p)));
        assert_eq!(a, uniform_points(500, bbox(), 3));
        assert_ne!(a, uniform_points(500, bbox(), 4));
    }

    #[test]
    fn mixture_concentrates_near_hotspots() {
        let hs = [
            Hotspot {
                center: Point::new(25.0, 25.0),
                sigma: 3.0,
                weight: 1.0,
            },
            Hotspot {
                center: Point::new(75.0, 75.0),
                sigma: 3.0,
                weight: 3.0,
            },
        ];
        let (pts, labels) = gaussian_mixture_labeled(2000, &hs, bbox(), 11);
        assert_eq!(pts.len(), 2000);
        assert_eq!(labels.len(), 2000);
        // ~75% of mass on the heavier hotspot.
        let heavy = labels.iter().filter(|l| **l == 1).count() as f64 / 2000.0;
        assert!((heavy - 0.75).abs() < 0.05, "got {heavy}");
        // Labeled points are near their generating centre.
        for (p, l) in pts.iter().zip(&labels) {
            assert!(p.dist(&hs[*l].center) < 6.0 * 3.0 + 1e-9);
        }
    }

    #[test]
    fn neyman_scott_clusters_are_tight() {
        let pts = neyman_scott(10, 50.0, 2.0, bbox(), 5);
        assert!(pts.len() >= 10 * 25);
        assert!(pts.iter().all(|p| bbox().contains(p)));
        // Mean nearest-neighbour distance far below CSR expectation
        // (CSR: ~0.5/sqrt(n/A) ≈ 0.5*sqrt(10000/500) ≈ 2.2; clusters: << that).
        let mean_nn: f64 = pts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                pts.iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, q)| p.dist(q))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / pts.len() as f64;
        assert!(mean_nn < 1.5, "clusters not tight: mean nn {mean_nn}");
    }

    #[test]
    fn hardcore_enforces_min_distance() {
        let pts = hardcore_points(300, 4.0, bbox(), 17);
        assert!(pts.len() > 200, "saturated too early: {}", pts.len());
        for (i, p) in pts.iter().enumerate() {
            for q in &pts[i + 1..] {
                assert!(p.dist(q) >= 4.0 - 1e-9);
            }
        }
    }

    #[test]
    fn hardcore_saturation_returns_partial() {
        // Box fits far fewer than requested.
        let pts = hardcore_points(10_000, 20.0, bbox(), 1);
        assert!(pts.len() < 50);
        assert!(!pts.is_empty());
    }

    #[test]
    fn taxi_like_has_hotspot_contrast() {
        let pts = taxi_like(4000, bbox(), 0.7, 23);
        assert_eq!(pts.len(), 4000);
        // Quadrat contrast: max cell count should dwarf the CSR mean.
        let mut counts = [0usize; 100];
        for p in &pts {
            let cx = ((p.x / 10.0) as usize).min(9);
            let cy = ((p.y / 10.0) as usize).min(9);
            counts[cy * 10 + cx] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max > 3.0 * 40.0, "no hotspot contrast: max {max}");
    }

    #[test]
    fn epidemic_waves_shift_hotspot_over_time() {
        let waves = [
            Wave {
                hotspot: Hotspot {
                    center: Point::new(20.0, 20.0),
                    sigma: 4.0,
                    weight: 1.0,
                },
                t_peak: 10.0,
                t_sigma: 2.0,
            },
            Wave {
                hotspot: Hotspot {
                    center: Point::new(80.0, 80.0),
                    sigma: 4.0,
                    weight: 1.0,
                },
                t_peak: 50.0,
                t_sigma: 2.0,
            },
        ];
        let pts = epidemic_waves(3000, &waves, bbox(), 7);
        assert_eq!(pts.len(), 3000);
        // Early events sit near the first centre, late near the second.
        let early: Vec<_> = pts.iter().filter(|p| p.t < 30.0).collect();
        let late: Vec<_> = pts.iter().filter(|p| p.t >= 30.0).collect();
        assert!(early.len() > 1000 && late.len() > 1000);
        let mean = |v: &[&TimedPoint]| {
            let inv = 1.0 / v.len() as f64;
            Point::new(
                v.iter().map(|p| p.point.x).sum::<f64>() * inv,
                v.iter().map(|p| p.point.y).sum::<f64>() * inv,
            )
        };
        assert!(mean(&early).dist(&Point::new(20.0, 20.0)) < 3.0);
        assert!(mean(&late).dist(&Point::new(80.0, 80.0)) < 3.0);
    }

    #[test]
    fn thinning_reproduces_intensity_structure() {
        use lsga_core::{DensityGrid, GridSpec};
        // Intensity: hot left half, cold right half (1:9 ratio).
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 10, 10);
        let mut grid = DensityGrid::zeros(spec);
        for iy in 0..10 {
            for ix in 0..10 {
                grid.set(ix, iy, if ix < 5 { 9.0 } else { 1.0 });
            }
        }
        let pts = thinning_sample(&grid, 4000, 11);
        assert_eq!(pts.len(), 4000);
        let left = pts.iter().filter(|p| p.x < 50.0).count() as f64 / 4000.0;
        assert!((left - 0.9).abs() < 0.03, "left fraction {left}");
        // Deterministic.
        assert_eq!(pts, thinning_sample(&grid, 4000, 11));
    }

    #[test]
    fn thinning_degenerate_surface() {
        use lsga_core::{DensityGrid, GridSpec};
        let spec = GridSpec::new(BBox::new(0.0, 0.0, 1.0, 1.0), 2, 2);
        let zero = DensityGrid::zeros(spec);
        assert!(thinning_sample(&zero, 100, 1).is_empty());
    }

    #[test]
    fn network_clusters_stay_near_seeds() {
        let net = grid_network(10, 10, 10.0);
        let events = clustered_on_network(&net, 4, 30, 5.0, 99);
        assert_eq!(events.len(), 120);
        for e in &events {
            assert!(e.offset >= 0.0 && e.offset <= net.edge(e.edge).length);
        }
        // Deterministic.
        assert_eq!(events, clustered_on_network(&net, 4, 30, 5.0, 99));
    }
}
