//! Minimal CSV I/O for point datasets.
//!
//! The real-world datasets the paper references (Chicago crime, NYC taxi)
//! distribute as CSV; this module reads/writes the two schemas the suite
//! uses — `x,y` and `x,y,t` — with strict, line-numbered error reporting
//! and no external parser dependency.

use lsga_core::{LsgaError, Point, Result, TimedPoint};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Write `x,y` rows (with a header) to `w`.
pub fn write_points<W: Write>(w: W, points: &[Point]) -> Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "x,y")?;
    for p in points {
        writeln!(out, "{},{}", p.x, p.y)?;
    }
    out.flush()?;
    Ok(())
}

/// Write `x,y,t` rows (with a header) to `w`.
pub fn write_timed_points<W: Write>(w: W, points: &[TimedPoint]) -> Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "x,y,t")?;
    for p in points {
        writeln!(out, "{},{},{}", p.point.x, p.point.y, p.t)?;
    }
    out.flush()?;
    Ok(())
}

/// Read `x,y` rows from `r`. A header line is auto-detected (skipped when
/// the first field does not parse as a float). Blank lines are ignored.
pub fn read_points<R: Read>(r: R) -> Result<Vec<Point>> {
    parse_rows(r, 2).map(|rows| rows.into_iter().map(|v| Point::new(v[0], v[1])).collect())
}

/// Read `x,y,t` rows from `r` with the same conventions.
pub fn read_timed_points<R: Read>(r: R) -> Result<Vec<TimedPoint>> {
    parse_rows(r, 3).map(|rows| {
        rows.into_iter()
            .map(|v| TimedPoint::new(v[0], v[1], v[2]))
            .collect()
    })
}

fn parse_rows<R: Read>(r: R, fields: usize) -> Result<Vec<Vec<f64>>> {
    let reader = BufReader::new(r);
    let mut rows = Vec::new();
    let mut line_buf = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        line_buf.clear();
        let n = reader.read_line(&mut line_buf)?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').map(str::trim).collect();
        // Header detection: first non-empty line whose first field is not
        // numeric.
        if rows.is_empty() && line_no <= 1 && parts[0].parse::<f64>().is_err() {
            continue;
        }
        if parts.len() != fields {
            return Err(LsgaError::Parse {
                line: line_no,
                message: format!("expected {fields} fields, got {}", parts.len()),
            });
        }
        let mut row = Vec::with_capacity(fields);
        for part in &parts {
            let value = part.parse::<f64>().map_err(|e| LsgaError::Parse {
                line: line_no,
                message: format!("bad float {part:?}: {e}"),
            })?;
            // "NaN"/"inf" parse as floats but poison every downstream
            // analytic (NaN coordinates silently bin into pixel 0 or trip
            // bbox assertions): reject them at the boundary.
            if !value.is_finite() {
                return Err(LsgaError::Parse {
                    line: line_no,
                    message: format!("non-finite value {part:?}"),
                });
            }
            row.push(value);
        }
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_roundtrip() {
        let pts = vec![Point::new(1.5, -2.25), Point::new(0.0, 1e6)];
        let mut buf = Vec::new();
        write_points(&mut buf, &pts).unwrap();
        let back = read_points(buf.as_slice()).unwrap();
        assert_eq!(back, pts);
    }

    #[test]
    fn timed_points_roundtrip() {
        let pts = vec![
            TimedPoint::new(1.0, 2.0, 3.5),
            TimedPoint::new(-1.0, 0.0, 0.0),
        ];
        let mut buf = Vec::new();
        write_timed_points(&mut buf, &pts).unwrap();
        let back = read_timed_points(buf.as_slice()).unwrap();
        assert_eq!(back, pts);
    }

    #[test]
    fn headerless_input_accepted() {
        let back = read_points("1.0,2.0\n3.0,4.0\n".as_bytes()).unwrap();
        assert_eq!(back, vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)]);
    }

    #[test]
    fn blank_lines_skipped() {
        let back = read_points("x,y\n\n1,2\n\n3,4\n".as_bytes()).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn bad_field_count_reports_line() {
        let err = read_points("x,y\n1,2\n1,2,3\n".as_bytes()).unwrap_err();
        match err {
            LsgaError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_float_reports_line() {
        let err = read_points("1,2\nfoo,3\n".as_bytes()).unwrap_err();
        match err {
            LsgaError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("foo"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn non_finite_values_rejected() {
        // Regression: "NaN,2" used to parse into a point that later
        // corrupted rasters / panicked the partitioner.
        for bad in ["NaN,2\n", "1,inf\n", "1,2\n-inf,0\n"] {
            let err = read_points(bad.as_bytes()).unwrap_err();
            match err {
                LsgaError::Parse { message, .. } => {
                    assert!(message.contains("non-finite"), "{bad:?}: {message}")
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let back = read_points(" 1.0 , 2.0 \n".as_bytes()).unwrap();
        assert_eq!(back, vec![Point::new(1.0, 2.0)]);
    }
}
