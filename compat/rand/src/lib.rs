//! Offline drop-in subset of the [`rand`](https://docs.rs/rand/0.8) API.
//!
//! The build environment has no network access, so the workspace cannot
//! fetch crates.io dependencies. This crate re-implements exactly the
//! slice of `rand` 0.8 that the workspace consumes — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` over the
//! range types we use, and `seq::SliceRandom::{shuffle,
//! choose_multiple}` — on top of the xoshiro256++ generator.
//!
//! The stream is **not** bit-compatible with upstream `rand`; it is a
//! different (but high-quality, deterministic) PRNG. Everything in the
//! workspace treats seeds as opaque reproducibility handles, never as a
//! cross-library contract, so this is safe.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 2^53) -> [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be sampled uniformly from a range (the subset of
/// upstream's `SampleRange` we need).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let span = self.end - self.start;
        let v = self.start + rng.next_f64() * span;
        // Floating rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            f64_prev(self.end)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Largest double strictly below `x` (for folding open upper bounds).
fn f64_prev(x: f64) -> f64 {
    if x == f64::NEG_INFINITY {
        return x;
    }
    let bits = x.to_bits();
    f64::from_bits(if x > 0.0 {
        bits - 1
    } else if x == 0.0 {
        1 | (1u64 << 63) // -MIN_POSITIVE subnormal
    } else {
        bits + 1
    })
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

/// Unbiased uniform draw in `[0, bound)` via rejection sampling.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening-multiply method (Lemire) with rejection for exactness.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Mirrors `rand::SeedableRng` for the one constructor the workspace
/// uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand seeds into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for
    /// `rand::rngs::StdRng`. Not stream-compatible with upstream, but
    /// every consumer in this workspace only relies on determinism in
    /// the seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden xoshiro state; the
            // splitmix expansion cannot produce it, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Mirrors the slice of `rand::seq::SliceRandom` the workspace uses.
    pub trait SliceRandom {
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// `amount` distinct elements, in selection order. Returns fewer
        /// when the slice is shorter than `amount`.
        fn choose_multiple<'a, R: RngCore>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose_multiple<'a, R: RngCore>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&v));
            let w = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
            let t = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(t > 0.0 && t < 1.0);
        }
    }

    #[test]
    fn int_ranges_cover_uniformly() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow ±10%.
            assert!((9_000..=11_000).contains(&c), "{counts:?}");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(5..=7u64);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..=27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 20).copied().collect();
        assert_eq!(picked.len(), 20);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 20);
        // Over-asking returns the whole slice.
        assert_eq!(v.choose_multiple(&mut rng, 500).count(), 50);
    }
}
