//! Offline drop-in subset of the [`proptest`](https://docs.rs/proptest/1)
//! API.
//!
//! The build environment has no network access, so the workspace cannot
//! fetch crates.io dependencies. This crate implements the slice of
//! proptest that the workspace's property tests use: the `proptest!`
//! macro (with `#![proptest_config(...)]`), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, the [`strategy::Strategy`] trait
//! with `prop_map`, numeric-range and tuple strategies,
//! `prop::collection::vec`, `any::<T>()`, and `prop::num::f64::ANY`.
//!
//! Unlike upstream there is no shrinking: a failing case panics with
//! the generated inputs' case number and the assertion message. Case
//! generation is deterministic per test (seeded by the test's name), so
//! failures reproduce exactly on re-run.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A `prop_assert*!` failed: the property is violated.
        Fail(String),
        /// A `prop_assume!` failed: the case is outside the property's
        /// domain and is skipped without counting against `cases`.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Mirrors `proptest::test_runner::Config` for the fields we use.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drive one property: run until `config.cases` cases pass, skipping
    /// rejected cases (bounded), panicking on the first failure.
    pub fn run_cases<F>(name: &str, config: Config, mut case: F)
    where
        F: FnMut(&mut StdRng) -> TestCaseResult,
    {
        let mut rng = StdRng::seed_from_u64(fnv1a(name));
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let max_rejects = config.cases as u64 * 64 + 256;
        let mut attempt: u64 = 0;
        while passed < config.cases {
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected} rejects, {passed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case #{attempt}: {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value` (no shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(f64, usize, u64, u32, i64, i32);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// `any::<T>()` support: the full domain of `T`.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for the whole domain of `T` (see [`any`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted length specifications for [`vec`]: a fixed length or a
    /// (half-open / inclusive) range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: each element independently from `element`, length
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod num {
    /// Strategies over `f64`, mirroring `proptest::num::f64`.
    pub mod f64 {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::RngCore;

        /// Every `f64` bit pattern — including infinities and NaNs.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;

            fn generate(&self, rng: &mut StdRng) -> f64 {
                f64::from_bits(rng.next_u64())
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module alias matching upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    __l,
                    __r,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `(left != right)`\n  both: `{:?}`", __l),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// The property-test entry macro. Mirrors upstream's sugared syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     fn my_property(x in 0.0f64..1.0, v in prop::collection::vec(any::<u8>(), 0..10)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(@cfg($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(@cfg(<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($config:expr)) => {};
    (@cfg($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($parm:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                stringify!($name),
                $config,
                |__proptest_rng| {
                    let ($($parm,)+) = ($(
                        $crate::strategy::Strategy::generate(&($strategy), __proptest_rng),
                    )+);
                    let __result: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    __result
                },
            );
        }
        $crate::__proptest_items!(@cfg($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn ranges_and_tuples(
            x in 0.0f64..1.0,
            (a, b) in (0usize..10, -5i64..5),
            v in prop::collection::vec(any::<u8>(), 0..20),
        ) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!(v.len() < 20);
        }

        fn mapped_strategy(p in (0.0f64..10.0, 0.0f64..10.0).prop_map(|(x, y)| x + y)) {
            prop_assert!((0.0..20.0).contains(&p));
            prop_assert_eq!(p, p);
        }

        fn assume_rejects(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0, "odd {} slipped through", n);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::test_runner::run_cases(
            "failing_property_panics",
            ProptestConfig::with_cases(8),
            |_rng| Err(TestCaseError::fail("boom")),
        );
    }

    #[test]
    fn f64_any_hits_special_values_eventually() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut finite = 0;
        for _ in 0..1000 {
            if prop::num::f64::ANY.generate(&mut rng).is_finite() {
                finite += 1;
            }
        }
        // Almost all bit patterns are finite; just check it runs and
        // produces a mix rather than a constant.
        assert!(finite > 900);
    }
}
