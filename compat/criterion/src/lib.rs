//! Offline drop-in subset of the [`criterion`](https://docs.rs/criterion/0.5)
//! API.
//!
//! The build environment has no network access, so the workspace cannot
//! fetch crates.io dependencies. This crate implements the slice of
//! criterion the benches use — `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, warm_up_time, measurement_time,
//! bench_function, bench_with_input, finish}`, `Bencher::iter`,
//! `BenchmarkId::new`, and the `criterion_group!` / `criterion_main!`
//! macros — with real wall-clock timing and a plain-text report
//! (median / min / mean over the configured samples) instead of
//! upstream's statistical machinery and HTML output.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measures one benchmark target: each `iter` call times one execution
/// of the closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        drop(out);
    }
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level driver handed to every bench function.
pub struct Criterion {
    /// `--test` smoke mode (upstream's `cargo bench -- --test`): run
    /// every target exactly once with no warm-up or sampling, so CI can
    /// verify benches build and execute without paying measurement time.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            test_mode,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        self
    }
}

/// A named group of related measurements.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into(), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let full = if self.name.is_empty() {
            id.id
        } else {
            format!("{}/{}", self.name, id.id)
        };

        if self.test_mode {
            let mut b = Bencher {
                samples: Vec::new(),
            };
            f(&mut b);
            println!("test {full} ... ok");
            return;
        }

        // Warm-up: run the target until the warm-up budget elapses
        // (at least once).
        let warm_start = Instant::now();
        loop {
            let mut b = Bencher {
                samples: Vec::new(),
            };
            f(&mut b);
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }

        // Measurement: collect `sample_size` samples, stopping early
        // only after the measurement budget is exhausted several times
        // over (slow targets still get >= 3 samples).
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let meas_start = Instant::now();
        while samples.len() < self.sample_size {
            let mut b = Bencher {
                samples: Vec::new(),
            };
            f(&mut b);
            samples.extend(b.samples);
            if samples.len() >= 3 && meas_start.elapsed() > self.measurement * 4 {
                break;
            }
        }

        if samples.is_empty() {
            println!("{full:<48} (no samples: bencher closure never called iter)");
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        println!(
            "{full:<48} median {:>12} | min {:>12} | mean {:>12} | {} samples",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(mean),
            samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Re-export so `criterion::black_box` resolves like upstream.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("compat_smoke");
        g.sample_size(4)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0usize;
        g.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| black_box(2 + 2));
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.finish();
        assert!(runs >= 4);
    }
}
