//! Workspace finiteness properties: no public interpolation API may
//! return NaN or ±inf for finite inputs.
//!
//! The historical bug: IDW weights `d²·powf(−p/2)` overflow to `+inf`
//! for near-coincident samples (subnormal `d²`), and `inf/inf` is NaN —
//! a silently poisoned raster. The repaired accumulators detect the
//! non-finite state, bump `numeric.anomalies_repaired`, and recompute
//! the pixel in log space. These properties drive the interpolators
//! across coordinate scales from 1e-180 to 1e170 and assert every
//! output pixel stays finite, using the anomaly counter to check the
//! repair path is actually exercised where it must be.

use lsga::core::par::Threads;
use lsga::core::{BBox, GridSpec, Point};
use lsga::interp::{VariogramModel, VariogramModelKind};
use lsga::{interp, obs};
use proptest::prelude::*;
use std::sync::Mutex;

// The obs registry is process-global; proptest cases and tests that
// enable/drain it serialize here.
static LOCK: Mutex<()> = Mutex::new(());

/// A coordinate magnitude spanning underflow-inducing (subnormal d²),
/// ordinary, and overflow-inducing (d² = inf) separations.
fn scale() -> impl Strategy<Value = f64> {
    // 10^e for e in [-180, 150]: d² spans ~10^-360 (flushes to 0 or
    // subnormal) up to ~10^300 (powf overflow territory at power 4).
    (-180i32..=150).prop_map(|e| 10f64.powi(e))
}

fn assert_all_finite(what: &str, values: &[f64]) {
    for (i, v) in values.iter().enumerate() {
        assert!(v.is_finite(), "{what}: value[{i}] = {v} is not finite");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// IDW at every power stays finite for arbitrarily scaled sample
    /// separations — including clusters so tight the raw weights
    /// overflow, and spreads so wide they underflow.
    #[test]
    fn idw_never_returns_non_finite(
        s in scale(),
        power_idx in 0usize..3,
        z1 in -100.0f64..100.0,
        z2 in -100.0f64..100.0,
    ) {
        let _g = LOCK.lock().unwrap();
        let power = [1.0, 2.0, 4.0][power_idx];
        let samples = vec![
            (Point::new(s, 0.0), z1),
            (Point::new(2.0 * s, 0.0), z2),
            (Point::new(0.0, s), 0.5 * (z1 + z2)),
        ];
        let bbox = BBox::new(-1.0, -1.0, 1.0, 1.0);
        let spec = GridSpec::new(bbox, 3, 3);
        obs::reset();
        obs::enable();
        let naive = interp::idw_naive_threads(&samples, spec, power, Threads::exact(1));
        let knn = interp::idw_knn_threads(&samples, spec, power, 2, Threads::exact(1));
        let radius = interp::idw_radius_threads(
            &samples, spec, power, 4.0 * s.max(1.0), Threads::exact(1),
        );
        let snap = obs::drain();
        obs::disable();
        assert_all_finite("idw_naive", naive.values());
        assert_all_finite("idw_knn", knn.values());
        assert_all_finite("idw_radius", radius.values());
        // Outputs stay inside the sample value hull: the repair path
        // must still produce a convex combination.
        let lo = z1.min(z2).min(0.5 * (z1 + z2)) - 1e-9;
        let hi = z1.max(z2).max(0.5 * (z1 + z2)) + 1e-9;
        for v in naive.values() {
            prop_assert!((lo..=hi).contains(v), "{v} outside [{lo}, {hi}]");
        }
        // Scales whose d² is subnormal-but-nonzero force the overflow
        // repair (below ~1.5e-162 the d² underflows to exactly 0 and the
        // exact-hit path answers instead); the anomaly counter proves
        // the repair path (not luck) produced the finite output.
        if (1e-160..=1e-155).contains(&s) && power >= 2.0 {
            prop_assert!(
                snap.counter("numeric.anomalies_repaired") > 0,
                "subnormal d² separations at power {power} must trip the repair"
            );
        }
    }

    /// Kriging predictions and variances stay finite even when the
    /// neighborhood is degenerate enough that the solve goes non-finite.
    #[test]
    fn kriging_never_returns_non_finite(
        s in -1e3f64..1e3,
        nugget_idx in 0usize..2,
    ) {
        let _g = LOCK.lock().unwrap();
        let nugget = [0.0, 0.1][nugget_idx];
        let bbox = BBox::new(0.0, 0.0, 100.0, 100.0);
        // Near-coincident pair plus a regular fringe: small pivots in
        // the kriging system without making it outright singular.
        let mut samples = vec![
            (Point::new(50.0, 50.0), s),
            (Point::new(50.0 + 1e-9, 50.0), s + 1.0),
        ];
        for i in 0..6 {
            let a = i as f64 / 6.0 * std::f64::consts::TAU;
            samples.push((Point::new(50.0 + 30.0 * a.cos(), 50.0 + 30.0 * a.sin()), a));
        }
        let spec = GridSpec::new(bbox, 5, 5);
        let model = VariogramModel {
            kind: VariogramModelKind::Gaussian,
            nugget,
            psill: 10.0,
            range: 40.0,
        };
        if let Ok(out) = interp::ordinary_kriging_threads(&samples, spec, &model, 8, Threads::exact(1)) {
            assert_all_finite("kriging prediction", out.prediction.values());
            assert_all_finite("kriging variance", out.variance.values());
            for v in out.variance.values() {
                prop_assert!(*v >= 0.0, "negative kriging variance {v}");
            }
        }
    }
}

/// The headline regression pinned end to end through the umbrella
/// crate: the pre-fix code returned an all-NaN raster here.
#[test]
fn headline_overflow_repro_is_finite_and_counted() {
    let _g = LOCK.lock().unwrap();
    let samples = vec![
        (Point::new(1e-160, 0.0), 3.0),
        (Point::new(2e-160, 0.0), 5.0),
    ];
    let spec = GridSpec::new(BBox::new(-1.0, -1.0, 1.0, 1.0), 3, 3);
    obs::reset();
    obs::enable();
    let grid = interp::idw_naive_threads(&samples, spec, 4.0, Threads::exact(1));
    let snap = obs::drain();
    obs::disable();
    assert_all_finite("headline repro", grid.values());
    for v in grid.values() {
        assert!((3.0..=5.0).contains(v), "{v} outside the sample hull");
    }
    assert!(
        snap.counter("numeric.anomalies_repaired") > 0,
        "the repro must flow through the repair path"
    );
}
