//! Property tests for the SoA microkernels: every columnar path must be
//! **bit-identical** to the scalar point-at-a-time path it replaced, on
//! random inputs. Fixed fold order plus the multiply-by-mask trick make
//! this an exact equality, not an epsilon comparison — see DESIGN.md
//! §3.11 for the argument.

use lsga::core::soa::{
    accumulate_density_row, accumulate_density_span, count_within_span, distances_sq_tile,
    PointsSoA,
};
use lsga::prelude::*;
use proptest::prelude::*;

fn kernel_for(idx: usize, b: f64) -> AnyKernel {
    KernelKind::ALL[idx % KernelKind::ALL.len()].with_bandwidth(b)
}

fn points_of(coords: &[(f64, f64)]) -> Vec<Point> {
    coords.iter().map(|(x, y)| Point::new(*x, *y)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn row_microkernel_bit_equals_scalar(
        coords in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..600),
        qxs in prop::collection::vec(-60.0f64..60.0, 0..40),
        qy in -60.0f64..60.0,
        b in 0.5f64..30.0,
        kidx in 0usize..7,
    ) {
        let kernel = kernel_for(kidx, b);
        let pts = points_of(&coords);
        let soa = PointsSoA::from_points(&pts);
        let cutoff = kernel.support_sq();
        // Nonzero init catches accumulators that reset instead of add.
        let mut acc = vec![0.125f64; qxs.len()];
        let mut want = acc.clone();
        accumulate_density_row(&kernel, cutoff, &qxs, qy, &soa.xs, &soa.ys, &mut acc);
        for (qx, w) in qxs.iter().zip(want.iter_mut()) {
            let q = Point::new(*qx, qy);
            for p in &pts {
                let d2 = p.dist_sq(&q);
                if d2 <= cutoff {
                    *w += kernel.eval_sq(d2);
                }
            }
        }
        for (a, w) in acc.iter().zip(&want) {
            prop_assert_eq!(a.to_bits(), w.to_bits());
        }
    }

    fn span_fold_bit_equals_scalar(
        coords in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..600),
        q in (-60.0f64..60.0, -60.0f64..60.0),
        b in 0.5f64..30.0,
        kidx in 0usize..7,
    ) {
        let kernel = kernel_for(kidx, b);
        let pts = points_of(&coords);
        let soa = PointsSoA::from_points(&pts);
        let cutoff = kernel.support_sq();
        let got = accumulate_density_span(&kernel, cutoff, q.0, q.1, &soa.xs, &soa.ys, 0.25);
        let qp = Point::new(q.0, q.1);
        let mut want = 0.25;
        for p in &pts {
            let d2 = p.dist_sq(&qp);
            if d2 <= cutoff {
                want += kernel.eval_sq(d2);
            }
        }
        prop_assert_eq!(got.to_bits(), want.to_bits());
    }

    fn distances_and_counts_match_scalar(
        coords in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..600),
        q in (-60.0f64..60.0, -60.0f64..60.0),
        r in 0.0f64..100.0,
    ) {
        let pts = points_of(&coords);
        let soa = PointsSoA::from_points(&pts);
        let qp = Point::new(q.0, q.1);
        let mut out = vec![0.0f64; pts.len()];
        distances_sq_tile(q.0, q.1, &soa.xs, &soa.ys, &mut out);
        for (p, d2) in pts.iter().zip(&out) {
            prop_assert_eq!(d2.to_bits(), p.dist_sq(&qp).to_bits());
        }
        let r2 = r * r;
        let want = pts.iter().filter(|p| p.dist_sq(&qp) <= r2).count();
        prop_assert_eq!(count_within_span(q.0, q.1, &soa.xs, &soa.ys, r2), want);
    }

    fn eval_sq_batch_bit_equals_eval_sq(
        d2s in prop::collection::vec(0.0f64..5_000.0, 0..600),
        b in 0.5f64..30.0,
        kidx in 0usize..7,
    ) {
        let kernel = kernel_for(kidx, b);
        let mut out = vec![0.0f64; d2s.len()];
        kernel.eval_sq_batch(&d2s, &mut out);
        for (d2, o) in d2s.iter().zip(&out) {
            prop_assert_eq!(o.to_bits(), kernel.eval_sq(*d2).to_bits());
        }
    }

    fn soa_columns_preserve_order(
        rows in prop::collection::vec(
            (-50.0f64..50.0, -50.0f64..50.0, -10.0f64..10.0),
            0..200,
        ),
    ) {
        let samples: Vec<(Point, f64)> = rows
            .iter()
            .map(|(x, y, z)| (Point::new(*x, *y), *z))
            .collect();
        let soa = PointsSoA::from_samples(&samples);
        prop_assert_eq!(soa.len(), samples.len());
        for (i, (p, z)) in samples.iter().enumerate() {
            prop_assert_eq!(soa.xs[i].to_bits(), p.x.to_bits());
            prop_assert_eq!(soa.ys[i].to_bits(), p.y.to_bits());
            prop_assert_eq!(soa.ws[i].to_bits(), z.to_bits());
        }
    }
}
