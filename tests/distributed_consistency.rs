//! Distributed-layer invariants: exactness against single-node results,
//! partition/halo accounting, and strategy behaviour under skew.

use lsga::dist::PartitionStrategy;
use lsga::prelude::*;
use lsga::{data, dist, kdv, kfunc};

fn skewed(n: usize) -> (Vec<Point>, BBox) {
    let window = BBox::new(0.0, 0.0, 100.0, 100.0);
    // 85% of mass in one corner: the worst case for uniform bands.
    let hotspots = [
        Hotspot {
            center: Point::new(15.0, 15.0),
            sigma: 6.0,
            weight: 8.5,
        },
        Hotspot {
            center: Point::new(70.0, 70.0),
            sigma: 20.0,
            weight: 1.5,
        },
    ];
    (data::gaussian_mixture(n, &hotspots, window, 31), window)
}

#[test]
fn kdv_exact_across_strategies_and_widths() {
    let (points, window) = skewed(1200);
    let spec = GridSpec::new(window, 40, 40);
    for b in [3.0, 14.0] {
        let kernel = Epanechnikov::new(b);
        let reference = kdv::grid_pruned_kdv(&points, spec, kernel, 1e-9);
        for strategy in [
            PartitionStrategy::UniformBands,
            PartitionStrategy::BalancedKd,
        ] {
            for workers in [1, 2, 5, 9, 16] {
                let (grid, metrics) =
                    dist::distributed_kdv(&points, spec, kernel, 1e-9, workers, strategy);
                // Workers sum kernel contributions in a different
                // order than the single-node pass, so allow relative
                // floating-point slack.
                assert!(
                    grid.linf_diff(&reference) <= reference.max() * 1e-12,
                    "b={b} {strategy:?} w={workers}: {}",
                    grid.linf_diff(&reference)
                );
                let owned: usize = metrics.workers.iter().map(|w| w.owned_points).sum();
                assert_eq!(owned, points.len());
                let pixels: usize = metrics.workers.iter().map(|w| w.owned_work).sum();
                assert_eq!(pixels, spec.len());
            }
        }
    }
}

#[test]
fn kfunc_exact_across_strategies() {
    let (points, _) = skewed(900);
    let cfg = KConfig::default();
    for s in [2.0, 10.0, 40.0] {
        let want = kfunc::grid_k(&points, s, cfg);
        for strategy in [
            PartitionStrategy::UniformBands,
            PartitionStrategy::BalancedKd,
        ] {
            for workers in [2, 6, 12] {
                let (got, metrics) = dist::distributed_k(&points, s, cfg, workers, strategy);
                assert_eq!(got, want, "s={s} {strategy:?} w={workers}");
                // Shipments superset ownership; bytes accounted at 16/pt.
                for w in &metrics.workers {
                    assert!(w.shipped_points >= w.owned_points);
                    assert_eq!(w.bytes_shipped, w.shipped_points as u64 * 16);
                }
            }
        }
    }
}

#[test]
fn balanced_kd_beats_bands_on_skewed_ownership() {
    let (points, window) = skewed(4000);
    let spec = GridSpec::new(window, 40, 40);
    let workers = 8;
    let imbalance = |strategy| {
        let (_, m) = dist::distributed_kdv(
            &points,
            spec,
            Epanechnikov::new(8.0),
            1e-9,
            workers,
            strategy,
        );
        let max = m.workers.iter().map(|w| w.owned_points).max().unwrap() as f64;
        let mean = points.len() as f64 / m.workers.len() as f64;
        max / mean
    };
    let bands = imbalance(PartitionStrategy::UniformBands);
    let kd = imbalance(PartitionStrategy::BalancedKd);
    assert!(
        kd < bands,
        "kd point-imbalance {kd:.2} should beat bands {bands:.2}"
    );
    assert!(kd < 2.0, "kd imbalance too high: {kd:.2}");
}

#[test]
fn halo_accounting_scales_with_radius_and_workers() {
    let (points, window) = skewed(2500);
    let spec = GridSpec::new(window, 40, 40);
    let run = |b: f64, w: usize| {
        dist::distributed_kdv(
            &points,
            spec,
            Epanechnikov::new(b),
            1e-9,
            w,
            PartitionStrategy::BalancedKd,
        )
        .1
    };
    // Wider kernels replicate more boundary points.
    assert!(run(20.0, 8).replicated_points() > run(2.0, 8).replicated_points());
    // More workers -> more tile boundary -> more replication.
    assert!(run(10.0, 16).replicated_points() >= run(10.0, 2).replicated_points());
    // One worker ships everything exactly once (no halo duplication).
    let single = run(10.0, 1);
    assert_eq!(single.total_shipped(), points.len());
    assert_eq!(single.replicated_points(), 0);
}
