//! Network-variant consistency: NKDV and the network K-function must be
//! internally consistent across implementations and must diverge from
//! their planar counterparts exactly the way the paper's Fig. 3 argues.

use lsga::prelude::*;
use lsga::{data, kdv, kfunc, network};

#[test]
fn nkdv_implementations_agree_on_random_network() {
    let window = BBox::new(0.0, 0.0, 100.0, 100.0);
    let net = network::random_geometric_network(80, 3, window, 5);
    let lixels = Lixels::build(&net, 2.0);
    let events = network::sample_on_network(&net, 60, 8);
    for kernel in [KernelKind::Epanechnikov, KernelKind::Triangular] {
        let k = kernel.with_bandwidth(15.0);
        let naive = kdv::nkdv_naive(&net, &lixels, &events, k).unwrap();
        let forward = kdv::nkdv_forward(&net, &lixels, &events, k).unwrap();
        assert!(
            naive.linf_diff(&forward) < 1e-9,
            "{kernel:?}: {}",
            naive.linf_diff(&forward)
        );
    }
}

#[test]
fn network_k_implementations_agree_on_clustered_events() {
    let net = network::grid_network(9, 9, 6.0);
    let events = data::clustered_on_network(&net, 6, 10, 5.0, 17);
    let thresholds: Vec<f64> = (1..=8).map(|i| i as f64 * 3.0).collect();
    for cfg in [
        KConfig {
            include_self: false,
        },
        KConfig { include_self: true },
    ] {
        assert_eq!(
            kfunc::network_k_naive(&net, &events, &thresholds, cfg),
            kfunc::network_k_shared(&net, &events, &thresholds, cfg)
        );
    }
}

#[test]
fn planar_k_dominates_network_k() {
    // Euclidean distance <= network distance, so at any s the planar
    // count must be >= the network count for the same embedded events —
    // the Fig. 3 / Yamada-Thill overestimation, quantified.
    let net = network::grid_network(8, 8, 8.0);
    let events = network::sample_on_network(&net, 120, 3);
    let planar: Vec<Point> = events.iter().map(|e| e.point(&net)).collect();
    let thresholds: Vec<f64> = (1..=10).map(|i| i as f64 * 2.5).collect();
    let cfg = KConfig::default();
    let net_k = kfunc::network_k_shared(&net, &events, &thresholds, cfg);
    let planar_k = kfunc::histogram_k_all(&planar, &thresholds, cfg);
    let mut strictly_greater = 0;
    for (i, t) in thresholds.iter().enumerate() {
        assert!(
            planar_k[i] >= net_k[i],
            "planar {} < network {} at s={t}",
            planar_k[i],
            net_k[i]
        );
        if planar_k[i] > net_k[i] {
            strictly_greater += 1;
        }
    }
    assert!(strictly_greater > 5, "no overestimation observed");
}

#[test]
fn fig3_barrier_separates_euclidean_neighbors() {
    // Two parallel roads joined only at one end; events at the far end
    // of the bottom road. The top-road lixel right across (Euclidean
    // distance 2) must receive zero network density while planar KDV at
    // the same location is strongly positive.
    let mut b = NetworkBuilder::new();
    let a0 = b.add_vertex(Point::new(0.0, 0.0));
    let a1 = b.add_vertex(Point::new(40.0, 0.0));
    let c0 = b.add_vertex(Point::new(0.0, 2.0));
    let c1 = b.add_vertex(Point::new(40.0, 2.0));
    b.add_edge(a0, a1, None).unwrap();
    b.add_edge(c0, c1, None).unwrap();
    b.add_edge(a0, c0, None).unwrap();
    let net = b.build().unwrap();

    let events: Vec<EdgePosition> = (0..20)
        .map(|i| EdgePosition {
            edge: EdgeId(0),
            offset: 35.0 + 0.2 * i as f64,
        })
        .collect();
    let kernel = Epanechnikov::new(6.0);
    let lixels = Lixels::build(&net, 1.0);
    let ndensity = kdv::nkdv_forward(&net, &lixels, &events, kernel).unwrap();

    // Top-road lixel nearest (37, 2).
    let top_idx = lixels
        .all()
        .iter()
        .position(|lx| lx.edge == EdgeId(1) && (lx.center_offset() - 37.0).abs() < 0.6)
        .unwrap();
    assert_eq!(ndensity.values()[top_idx], 0.0);

    // Planar KDV at the same location is large.
    let planar_events: Vec<Point> = events.iter().map(|e| e.point(&net)).collect();
    let spec = GridSpec::new(BBox::new(0.0, -1.0, 40.0, 3.0), 80, 8);
    let planar = kdv::grid_pruned_kdv(&planar_events, spec, kernel, 1e-9);
    let (ix, iy) = spec.pixel_of(&Point::new(37.0, 2.0));
    assert!(
        planar.at(ix, iy) > 5.0,
        "planar density {}",
        planar.at(ix, iy)
    );
}

#[test]
fn network_k_plot_detects_network_clusters() {
    let net = network::grid_network(7, 7, 6.0);
    let clustered = data::clustered_on_network(&net, 4, 18, 4.0, 23);
    let thresholds: Vec<f64> = (1..=6).map(|i| i as f64 * 3.0).collect();
    let plot = kfunc::network_k_plot(&net, &clustered, &thresholds, 15, 42, KConfig::default());
    assert!(!plot.clustered_thresholds().is_empty());

    let random = network::sample_on_network(&net, clustered.len(), 77);
    let plot_r = kfunc::network_k_plot(&net, &random, &thresholds, 25, 43, KConfig::default());
    let inside = (0..thresholds.len())
        .filter(|i| plot_r.observed[*i] <= plot_r.upper[*i])
        .count();
    assert!(inside >= thresholds.len() - 1);
}

#[test]
fn snapping_pipeline_feeds_network_tools() {
    // Raw planar points -> snap to network -> NKDV: end-to-end pipeline.
    let window = BBox::new(0.0, 0.0, 60.0, 60.0);
    let net = network::grid_network(7, 7, 10.0);
    let idx = network::SegmentIndex::build(&net, 5.0);
    let raw = data::gaussian_mixture(
        200,
        &[Hotspot {
            center: Point::new(20.0, 20.0),
            sigma: 6.0,
            weight: 1.0,
        }],
        window,
        9,
    );
    let events: Vec<EdgePosition> = raw
        .iter()
        .map(|p| idx.snap(&net, p).expect("network has edges").0)
        .collect();
    let lixels = Lixels::build(&net, 2.0);
    let density = kdv::nkdv_forward(&net, &lixels, &events, Quartic::new(12.0)).unwrap();
    // The hottest lixel should sit near the generating hotspot.
    let hot = lixels.all()[density.argmax()];
    let hot_pt = net.point_on_edge(hot.edge, hot.center_offset());
    assert!(
        hot_pt.dist(&Point::new(20.0, 20.0)) < 15.0,
        "hot lixel at {hot_pt:?}"
    );
}
