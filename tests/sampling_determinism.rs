//! Seeded-sampling determinism and the Eq. 7 guarantee, end to end.
//!
//! The degraded serving tier leans on two properties of the sampling
//! estimator that this suite pins down:
//!
//! 1. **Determinism** — a fixed seed yields a bit-identical raster on
//!    every run, at every `LSGA_THREADS` (the sample draw and the
//!    grid-pruned evaluation over the sample are sequential), and for
//!    [`sampling_kdv_segmented`] under every segmentation of the same
//!    logical point sequence. CI runs this binary at `LSGA_THREADS`
//!    1 and 8; the in-process tests additionally pin two servers at
//!    `Threads::exact(1)` and `Threads::exact(8)` against each other.
//! 2. **The guarantee** — at the Eq. 7 sample size
//!    `m = ⌈ln(2/δ)/(2ε²)⌉`, the observed L∞ error against the exact
//!    density stays within the additive Hoeffding bound `ε·n·K(0)`
//!    (2× slack for the δ failure probability), across every kernel
//!    family and a range of bandwidths.

use lsga::core::par::Threads;
use lsga::index::{GridIndex, SegmentedGrid};
use lsga::kdv::{naive_kdv, sample_size_for_guarantee, sampling_kdv, sampling_kdv_segmented};
use lsga::prelude::*;
use lsga::serve::{ApproxMode, QualityPolicy, TileServer, TileServerConfig};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn window() -> BBox {
    BBox::new(0.0, 0.0, 100.0, 100.0)
}

fn clustered(n: usize, jitter: u64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let f = (i as f64) + (jitter % 97) as f64;
            let cx = if i % 3 == 0 { 30.0 } else { 70.0 };
            Point::new(
                (cx + (f * 0.831).sin() * 12.0).clamp(0.0, 100.0),
                (50.0 + (f * 0.557).cos() * 12.0).clamp(0.0, 100.0),
            )
        })
        .collect()
}

fn spec() -> GridSpec {
    GridSpec::new(window(), 24, 24)
}

fn bits(grid: &DensityGrid) -> Vec<u64> {
    grid.values().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn fixed_seed_is_bitwise_stable_across_runs() {
    let pts = clustered(3_000, 0);
    let k = KernelKind::Quartic.with_bandwidth(8.0);
    let m = sample_size_for_guarantee(0.1, 0.01).unwrap();
    let a = sampling_kdv(&pts, spec(), k, m, 42);
    let b = sampling_kdv(&pts, spec(), k, m, 42);
    assert_eq!(bits(&a), bits(&b), "same seed must replay bit-for-bit");
    let c = sampling_kdv(&pts, spec(), k, m, 43);
    assert_ne!(bits(&a), bits(&c), "a different seed must draw differently");
}

#[test]
fn segmented_sampling_is_segmentation_and_run_invariant() {
    let pts = clustered(4_000, 7);
    let k = KernelKind::Epanechnikov.with_bandwidth(10.0);
    let m = sample_size_for_guarantee(0.1, 0.01).unwrap();
    let radius = k.effective_radius(1e-9);

    let seg = |parts: &[&[Point]]| {
        SegmentedGrid::from_segments(
            parts
                .iter()
                .map(|p| Arc::new(GridIndex::with_bbox(p, radius, window())))
                .collect(),
        )
    };
    let mono = seg(&[&pts]);
    let (head, tail) = pts.split_at(1_100);
    let (mid, last) = tail.split_at(1_700);
    let split = seg(&[head, mid, last]);

    let a = sampling_kdv_segmented(&mono, spec(), k, m, 9);
    let b = sampling_kdv_segmented(&split, spec(), k, m, 9);
    let c = sampling_kdv_segmented(&split, spec(), k, m, 9);
    assert_eq!(
        bits(&a),
        bits(&b),
        "logical-index draw must not see segment boundaries"
    );
    assert_eq!(bits(&b), bits(&c), "repeat run must be bit-identical");
}

/// The full degraded serving path — admission, segment-stack sampling,
/// tile assembly — replayed on two servers whose only difference is the
/// worker pool width. The rasters must match bit for bit.
#[test]
fn degraded_tiles_are_thread_count_invariant() {
    let pts = clustered(5_000, 3);
    let k = KernelKind::Quartic.with_bandwidth(8.0);
    let policy = QualityPolicy::new(
        Duration::ZERO,
        ApproxMode::Sampling {
            eps: 0.1,
            delta: 0.01,
            seed: 11,
        },
    )
    .unwrap();

    let tile_for = |threads: usize| {
        let s = TileServer::new(TileServerConfig {
            tile_px: 32,
            max_zoom: 3,
            shards: 4,
            byte_budget: 1 << 22,
            threads: Threads::exact(threads),
            ..TileServerConfig::default()
        });
        let layer = s.add_layer(pts.clone(), window(), k, 1e-9).expect("layer");
        // Arm the admission controller: with a 1 s estimate and a zero
        // deadline every cold request degrades deterministically.
        s.set_compute_estimate(Duration::from_secs(1));
        let t = s
            .get_tile_with_policy(layer, 2, 1, 2, &policy)
            .expect("degraded tile");
        assert!(!t.tier.is_exact(), "probe must be served degraded");
        bits(&t.grid)
    };

    let one = tile_for(1);
    let eight = tile_for(8);
    assert_eq!(one, eight, "degraded raster must not depend on pool width");
    assert_eq!(one, tile_for(1), "and must replay bit-identically");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Eq. 7 honoured in practice: at `m = ⌈ln(2/δ)/(2ε²)⌉` the observed
    /// L∞ error vs the exact density stays within `2 · ε·n·K(0)` for
    /// every kernel family and bandwidth (the 2× absorbs δ = 1%).
    fn hoeffding_linf_bound_over_kernels_and_bandwidths(
        kidx in 0usize..7,
        b in 4.0f64..40.0,
        eidx in 0usize..3,
        seed in 0u64..1_000,
        jitter in 0u64..97,
    ) {
        let eps = [0.05f64, 0.1, 0.2][eidx];
        let kernel = KernelKind::ALL[kidx].with_bandwidth(b);
        let pts = clustered(2_000, jitter);
        let m = sample_size_for_guarantee(eps, 0.01).unwrap();
        let exact = naive_kdv(&pts, spec(), kernel);
        let approx = sampling_kdv(&pts, spec(), kernel, m, seed);
        let bound = eps * pts.len() as f64 * kernel.max_value();
        let linf = approx
            .values()
            .iter()
            .zip(exact.values())
            .map(|(a, e)| (a - e).abs())
            .fold(0.0f64, f64::max);
        prop_assert!(
            linf <= 2.0 * bound,
            "L∞ {} exceeds 2× Hoeffding bound {} (kernel {:?}, b {}, eps {})",
            linf, 2.0 * bound, KernelKind::ALL[kidx], b, eps
        );
    }
}
