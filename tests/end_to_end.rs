//! The full analyst workflow the paper describes in Section 2.1: detect
//! significance with a K-function plot, feed the clustered scale into
//! the KDV bandwidth, rasterize, render, and — for spatiotemporal data —
//! watch hotspots move across slices. Plus interpolation and I/O paths.

use lsga::prelude::*;
use lsga::{data, interp, kdv, kfunc, viz};

fn window() -> BBox {
    BBox::new(0.0, 0.0, 100.0, 100.0)
}

#[test]
fn k_function_guided_kdv_workflow() {
    let truth = Point::new(35.0, 60.0);
    let points = data::gaussian_mixture(
        1200,
        &[Hotspot {
            center: truth,
            sigma: 4.0,
            weight: 1.0,
        }],
        window(),
        7,
    );

    // 1. K-function plot: find statistically clustered scales (Def. 3).
    let thresholds: Vec<f64> = (1..=12).map(|i| i as f64).collect();
    let plot = kfunc::k_function_plot(
        &points,
        window(),
        &thresholds,
        20,
        99,
        KConfig::default(),
        4,
    );
    let clustered = plot.clustered_thresholds();
    assert!(!clustered.is_empty(), "no clustering detected");

    // 2. Use a clustered scale as the KDV bandwidth (paper §2.1).
    let bandwidth = clustered[clustered.len() / 2];
    let spec = GridSpec::new(window(), 128, 128);
    let kernel = PolyKernel::new(KernelKind::Quartic, bandwidth).unwrap();
    let density = kdv::slam_kdv(&points, spec, kernel);

    // 3. The hotspot is where the generator put it.
    assert!(
        density.hotspot().dist(&truth) < 6.0,
        "hotspot {:?} vs truth {truth:?}",
        density.hotspot()
    );

    // 4. Render Fig. 1 (heatmap PNG) and Fig. 2 (K plot SVG).
    let dir = std::env::temp_dir().join("lsga_end_to_end");
    std::fs::create_dir_all(&dir).unwrap();
    let png = dir.join("heatmap.png");
    viz::write_heatmap_png(&png, &density, Colormap::Heat).unwrap();
    assert!(std::fs::metadata(&png).unwrap().len() > 100);
    let svg = viz::k_plot_svg(&plot, 480, 360);
    assert!(svg.contains("polyline"));
    std::fs::remove_file(&png).ok();
}

#[test]
fn stkdv_tracks_moving_outbreak() {
    let waves = [
        Wave {
            hotspot: Hotspot {
                center: Point::new(20.0, 20.0),
                sigma: 4.0,
                weight: 1.0,
            },
            t_peak: 5.0,
            t_sigma: 2.0,
        },
        Wave {
            hotspot: Hotspot {
                center: Point::new(80.0, 75.0),
                sigma: 4.0,
                weight: 1.0,
            },
            t_peak: 25.0,
            t_sigma: 2.0,
        },
    ];
    let cases = data::epidemic_waves(2500, &waves, window(), 13);
    let spec = GridSpec::new(window(), 40, 40);
    let ks = Epanechnikov::new(10.0);
    let kt = PolyKernel::new(KernelKind::Epanechnikov, 4.0).unwrap();
    let cube = kdv::stkdv_sweep(&cases, spec, 0.0, 30.0, 6, ks, kt, 1e-9);

    // Early slice hotspot near the first wave, late near the second
    // (the paper's Fig. 4 phenomenon).
    let early = cube.slice(1).hotspot();
    let late = cube.slice(4).hotspot();
    assert!(
        early.dist(&Point::new(20.0, 20.0)) < 12.0,
        "early {early:?}"
    );
    assert!(late.dist(&Point::new(80.0, 75.0)) < 12.0, "late {late:?}");

    // And the spatiotemporal K-function confirms space-time clustering.
    let st_plot = kfunc::st_k_plot(
        &cases,
        window(),
        0.0,
        30.0,
        &[4.0, 8.0],
        &[2.0, 5.0],
        10,
        3,
        KConfig::default(),
    );
    assert!(!st_plot.clustered_cells().is_empty());
}

#[test]
fn interpolation_pipeline_idw_vs_kriging() {
    // A smooth field sampled sparsely; both interpolators must
    // reconstruct it better than the field's total variation.
    let field = |p: &Point| 20.0 + 0.3 * p.x - 0.2 * p.y + (p.x * 0.05).sin() * 3.0;
    let sample_pts = data::uniform_points(250, window(), 21);
    let samples: Vec<(Point, f64)> = sample_pts.iter().map(|p| (*p, field(p))).collect();
    let spec = GridSpec::new(window(), 25, 25);

    let idw = interp::idw_knn(&samples, spec, 2.0, 8);
    let bins = interp::empirical_variogram(&samples, 50.0, 12);
    let model = interp::fit_variogram(&bins, interp::VariogramModelKind::Exponential).unwrap();
    let kriged = interp::ordinary_kriging(&samples, spec, &model, 12).unwrap();

    let rmse = |grid: &DensityGrid| -> f64 {
        let mut acc = 0.0;
        for (_, _, q, v) in grid.iter_pixels() {
            let e = v - field(&q);
            acc += e * e;
        }
        (acc / grid.spec().len() as f64).sqrt()
    };
    let idw_rmse = rmse(&idw);
    let kriging_rmse = rmse(&kriged.prediction);
    // Field spans ~50 units; both interpolators should be far tighter.
    assert!(idw_rmse < 5.0, "IDW RMSE {idw_rmse}");
    assert!(kriging_rmse < 5.0, "kriging RMSE {kriging_rmse}");
}

#[test]
fn csv_roundtrip_through_files() {
    let dir = std::env::temp_dir().join("lsga_csv_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("points.csv");

    let points = data::uniform_points(500, window(), 77);
    data::csv::write_points(std::fs::File::create(&path).unwrap(), &points).unwrap();
    let back = data::csv::read_points(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(points, back);
    std::fs::remove_file(&path).ok();
}

#[test]
fn bandwidth_rules_produce_usable_kdv() {
    let points = data::taxi_like(3000, window(), 0.6, 5);
    let b = lsga::core::silverman_bandwidth(&points).unwrap();
    assert!(b > 0.1 && b < 60.0, "odd bandwidth {b}");
    let spec = GridSpec::new(window(), 64, 64);
    let grid = kdv::grid_pruned_kdv(&points, spec, Quartic::new(b), 1e-9);
    assert!(grid.max() > 0.0);
}
