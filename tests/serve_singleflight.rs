//! Single-flight coalescing, proven by the obs counter table.
//!
//! The contract: N concurrent requests for one cold tile trigger
//! exactly **one** computation; the other N−1 park on the flight's
//! condvar and receive the leader's tile. The headline test makes the
//! race deterministic with the server's compute hook — the leader spins
//! until `serve.coalesced_waits` reaches 15 (each waiter increments the
//! counter *before* parking), so by the time the computation starts,
//! all 15 followers are provably coalesced onto the flight. The obs
//! table then certifies the accounting: 16 misses, 1 tile computed,
//! 15 coalesced waits, 0 hits.

use lsga::core::error::LsgaError;
use lsga::core::par::Threads;
use lsga::obs::Counter;
use lsga::prelude::*;
use lsga::serve::{compute_tile_direct, TileCoord, TileServer, TileServerConfig};
use lsga::{data, obs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

// The obs registry is process-global; every test that enables/drains it
// serializes here.
static LOCK: Mutex<()> = Mutex::new(());

fn window() -> BBox {
    BBox::new(0.0, 0.0, 100.0, 100.0)
}

fn server() -> TileServer {
    TileServer::new(TileServerConfig {
        tile_px: 32,
        max_zoom: 4,
        shards: 4,
        byte_budget: 1 << 22,
        threads: Threads::exact(1),
        ..TileServerConfig::default()
    })
}

#[test]
fn sixteen_concurrent_requests_coalesce_to_one_computation() {
    let _g = LOCK.lock().unwrap();
    obs::reset();
    obs::enable();

    let s = Arc::new(server());
    let layer = s
        .add_layer(
            data::uniform_points(400, window(), 9),
            window(),
            KernelKind::Quartic.with_bandwidth(10.0),
            1e-9,
        )
        .expect("layer");

    // Leader-side interception: refuse to compute until the other 15
    // requests have counted themselves as coalesced waiters. Waiters
    // bump `serve.coalesced_waits` before parking on the condvar, so
    // spinning on the counter pins the interleaving exactly.
    s.set_compute_hook(Some(Arc::new(|_key| {
        while obs::counter_value(Counter::ServeCoalescedWaits) < 15 {
            thread::yield_now();
        }
    })));

    let barrier = Arc::new(Barrier::new(16));
    let handles: Vec<_> = (0..16)
        .map(|_| {
            let s = Arc::clone(&s);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                s.get_tile(0, 3, 2, 5).expect("get_tile")
            })
        })
        .collect();
    let tiles: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("request thread panicked"))
        .collect();
    s.set_compute_hook(None);
    let _ = layer;

    // Everyone got the same physical tile (leader's Arc, fanned out).
    for t in &tiles[1..] {
        assert!(
            Arc::ptr_eq(&tiles[0], t),
            "waiter received a different tile"
        );
    }

    let snap = obs::drain();
    obs::disable();
    assert_eq!(
        snap.counter("serve.tiles_computed"),
        1,
        "exactly one compute"
    );
    assert_eq!(snap.counter("serve.coalesced_waits"), 15, "15 coalesced");
    assert_eq!(snap.counter("serve.cache_misses"), 16, "all 16 missed cold");
    assert_eq!(snap.counter("serve.cache_hits"), 0);
    assert_eq!(snap.counter("serve.stale_discards"), 0);

    // The computation happened under a span, once.
    let compute_spans = snap
        .spans()
        .iter()
        .filter(|sp| sp.name == "serve.compute_tile")
        .map(|sp| sp.count)
        .sum::<u64>();
    assert_eq!(compute_spans, 1, "one serve.compute_tile span");
}

#[test]
fn leader_panic_fails_waiters_and_unwedges_the_key() {
    // A panic in the leader's compute path must not strand coalesced
    // waiters on the condvar or wedge the key: the abort guard fails
    // the flight (waiters get `LsgaError::Panicked`) and retires it
    // (the next request leads a fresh, working flight).
    let _g = LOCK.lock().unwrap();
    obs::reset();
    obs::enable();
    let s = Arc::new(server());
    let pts = data::uniform_points(200, window(), 17);
    let layer = s
        .add_layer(
            pts.clone(),
            window(),
            KernelKind::Quartic.with_bandwidth(10.0),
            1e-9,
        )
        .expect("layer");

    // First hook invocation (the doomed leader): wait until the other
    // request has provably parked as a coalesced waiter, then panic.
    // Later invocations are no-ops so the retry below computes.
    let fired = Arc::new(AtomicBool::new(false));
    let fired_hook = Arc::clone(&fired);
    s.set_compute_hook(Some(Arc::new(move |_key| {
        if !fired_hook.swap(true, Ordering::SeqCst) {
            while obs::counter_value(Counter::ServeCoalescedWaits) < 1 {
                thread::yield_now();
            }
            panic!("injected leader panic");
        }
    })));

    let barrier = Arc::new(Barrier::new(2));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let s = Arc::clone(&s);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                s.get_tile(0, 2, 1, 1)
            })
        })
        .collect();
    let mut panicked = 0;
    let mut failed_waits = 0;
    for h in handles {
        match h.join() {
            Err(_) => panicked += 1, // the leader: panic propagates in its thread
            Ok(Err(LsgaError::Panicked(_))) => failed_waits += 1,
            Ok(other) => panic!("expected panic or Panicked error, got {other:?}"),
        }
    }
    assert_eq!(panicked, 1, "exactly one request led and panicked");
    assert_eq!(failed_waits, 1, "the waiter woke with the leader's failure");

    // The key is not wedged: a fresh request leads a new flight and
    // serves exact bits.
    let tile = s.get_tile(0, 2, 1, 1).expect("post-panic request");
    let direct = compute_tile_direct(
        &pts,
        &window(),
        KernelKind::Quartic.with_bandwidth(10.0),
        1e-9,
        32,
        TileCoord::new(2, 1, 1),
    );
    for (a, b) in tile.grid.values().iter().zip(direct.values()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    s.set_compute_hook(None);
    let _ = layer;
    obs::disable();
}

#[test]
fn insert_completing_before_publish_forces_recompute() {
    // The stale-publish race from the review: a leader snapshots, an
    // insert completes while it computes, and a fresh request could
    // join the still-running flight *after* the insert. The commit
    // protocol must detect the generation bump and recompute before
    // publishing — nobody may receive pre-insert bits.
    let _g = LOCK.lock().unwrap();
    obs::reset();
    obs::enable();
    let s = Arc::new(server());
    let kernel = KernelKind::Epanechnikov.with_bandwidth(8.0);
    let mut pts = data::uniform_points(150, window(), 23);
    let layer = s
        .add_layer(pts.clone(), window(), kernel, 1e-9)
        .expect("layer");

    // First hook invocation: hold the leader mid-flight (snapshot
    // taken, nothing computed) until the insert below has completed.
    // The recompute iteration passes through untouched.
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let first = Arc::new(AtomicBool::new(true));
    let (entered_h, release_h, first_h) = (
        Arc::clone(&entered),
        Arc::clone(&release),
        Arc::clone(&first),
    );
    s.set_compute_hook(Some(Arc::new(move |_key| {
        if first_h.swap(false, Ordering::SeqCst) {
            entered_h.store(true, Ordering::SeqCst);
            while !release_h.load(Ordering::SeqCst) {
                thread::yield_now();
            }
        }
    })));

    let reader = {
        let s = Arc::clone(&s);
        thread::spawn(move || s.get_tile(0, 2, 0, 0).expect("get_tile"))
    };
    while !entered.load(Ordering::SeqCst) {
        thread::yield_now();
    }
    // Leader is parked on its pre-insert snapshot; complete an insert.
    let batch = vec![Point::new(10.0, 12.0), Point::new(11.0, 9.0)];
    s.insert_points(layer, &batch).expect("insert");
    pts.extend_from_slice(&batch);
    release.store(true, Ordering::SeqCst);

    let tile = reader.join().expect("reader panicked");
    s.set_compute_hook(None);

    // The served tile reflects the post-insert point set, bit for bit.
    let direct = compute_tile_direct(&pts, &window(), kernel, 1e-9, 32, TileCoord::new(2, 0, 0));
    for (i, (a, b)) in tile.grid.values().iter().zip(direct.values()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "pixel {i} served pre-insert bits");
    }

    let snap = obs::drain();
    obs::disable();
    assert_eq!(
        snap.counter("serve.stale_discards"),
        1,
        "the pre-insert computation was discarded"
    );
    assert_eq!(
        snap.counter("serve.tiles_computed"),
        2,
        "one stale compute + one recompute"
    );
}

#[test]
fn post_flight_requests_hit_the_cache() {
    let _g = LOCK.lock().unwrap();
    obs::reset();
    obs::enable();
    let s = server();
    let layer = s
        .add_layer(
            data::uniform_points(100, window(), 4),
            window(),
            KernelKind::Epanechnikov.with_bandwidth(8.0),
            1e-9,
        )
        .expect("layer");
    let a = s.get_tile(layer, 2, 1, 3).expect("cold");
    let b = s.get_tile(layer, 2, 1, 3).expect("warm");
    assert!(Arc::ptr_eq(&a, &b));
    let snap = obs::drain();
    obs::disable();
    assert_eq!(snap.counter("serve.tiles_computed"), 1);
    assert_eq!(snap.counter("serve.cache_misses"), 1);
    assert_eq!(snap.counter("serve.cache_hits"), 1);
    assert_eq!(snap.counter("serve.coalesced_waits"), 0);
}

#[test]
fn request_accounting_balances_under_concurrent_hammering() {
    // No hook: genuine racing. The exact hit/miss split is timing-
    // dependent, but conservation laws must hold: every request is a
    // hit, a computed miss, or a coalesced miss; and computations never
    // exceed misses.
    let _g = LOCK.lock().unwrap();
    obs::reset();
    obs::enable();
    let s = Arc::new(server());
    let _ = s
        .add_layer(
            data::uniform_points(200, window(), 31),
            window(),
            KernelKind::Triangular.with_bandwidth(7.0),
            1e-9,
        )
        .expect("layer");
    let per_thread = 40u32;
    let handles: Vec<_> = (0..8)
        .map(|t: u32| {
            let s = Arc::clone(&s);
            thread::spawn(move || {
                for i in 0..per_thread {
                    // Overlapping little working set → plenty of both
                    // hits and races onto the same cold tiles.
                    let z = 2u8;
                    let x = (i + t) % 4;
                    let y = (i * 3 + t) % 4;
                    let _ = s.get_tile(0, z, x, y).expect("get");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("hammer thread panicked");
    }
    let snap = obs::drain();
    obs::disable();
    let total = u64::from(per_thread) * 8;
    let hits = snap.counter("serve.cache_hits");
    let misses = snap.counter("serve.cache_misses");
    let computed = snap.counter("serve.tiles_computed");
    let coalesced = snap.counter("serve.coalesced_waits");
    assert_eq!(hits + misses, total, "every request is a hit or a miss");
    assert_eq!(
        computed + coalesced,
        misses,
        "every miss either computed or coalesced"
    );
    assert!(computed >= 1, "something must have been computed");
}
