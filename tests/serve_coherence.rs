//! Cache-coherence property suite for the serving layer.
//!
//! The headline invariant of `lsga-serve`: **a served tile is
//! bit-identical to the same region computed directly**, whatever the
//! cache did in between. This suite drives randomized interleavings of
//! get / batch-get / insert / clear against a mirror of the layer's
//! point sequence, with byte budgets small enough that eviction fires
//! constantly (including budget 0, where nothing ever resides and every
//! request takes the recompute path). After every read the served
//! pixels are compared to [`compute_tile_direct`] — fresh index, no
//! server — with `to_bits` equality, not epsilon.
//!
//! Every scenario runs the server pool at 1 and 8 threads; CI repeats
//! the whole binary under `LSGA_THREADS` {1, 8} which additionally
//! covers the `Threads::auto()` default path.

use lsga::core::par::Threads;
use lsga::prelude::*;
use lsga::serve::{compute_tile_direct, TileCoord, TileServer, TileServerConfig};
use proptest::prelude::*;
use std::sync::Arc;

const TILE_PX: usize = 8;
const MAX_ZOOM: u8 = 3;
const TAIL_EPS: f64 = 1e-6;

fn window() -> BBox {
    BBox::new(0.0, 0.0, 100.0, 100.0)
}

fn kernel_for(idx: usize, b: f64) -> AnyKernel {
    KernelKind::ALL[idx % KernelKind::ALL.len()].with_bandwidth(b)
}

/// Deterministic scatter inside the window.
fn scatter(n: usize, salt: u64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let f = (i as f64) + (salt as f64) * 0.618;
            Point::new(
                50.0 + (f * 0.831).sin() * 49.0,
                50.0 + (f * 0.557).cos() * 49.0,
            )
        })
        .collect()
}

fn coord(z: u8, xr: u32, yr: u32) -> TileCoord {
    let z = z % (MAX_ZOOM + 1);
    let n = 1u32 << z;
    TileCoord::new(z, xr % n, yr % n)
}

fn assert_tile_matches(
    served: &lsga::serve::Tile,
    mirror: &[Point],
    kernel: AnyKernel,
    c: TileCoord,
) -> Result<(), TestCaseError> {
    let direct = compute_tile_direct(mirror, &window(), kernel, TAIL_EPS, TILE_PX, c);
    for (i, (a, b)) in served.grid.values().iter().zip(direct.values()).enumerate() {
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "pixel {} of tile ({},{},{}) diverged from direct computation",
            i,
            c.z,
            c.x,
            c.y
        );
    }
    Ok(())
}

/// One randomized interleaving at a given pool width.
#[allow(clippy::too_many_arguments)]
fn run_interleaving(
    threads: usize,
    budget: usize,
    kidx: usize,
    bandwidth: f64,
    n0: usize,
    ops: &[(u32, u32, u32, u32, u32)],
) -> Result<(), TestCaseError> {
    let kernel = kernel_for(kidx, bandwidth);
    let mut mirror = scatter(n0, 1);
    let server = TileServer::new(TileServerConfig {
        tile_px: TILE_PX,
        max_zoom: MAX_ZOOM,
        shards: 2,
        byte_budget: budget,
        threads: Threads::exact(threads),
        ..TileServerConfig::default()
    });
    let layer = server
        .add_layer(mirror.clone(), window(), kernel, TAIL_EPS)
        .expect("layer");

    for (step, &(kind, z, xr, yr, n)) in ops.iter().enumerate() {
        let z = (z % 8) as u8;
        match kind % 4 {
            // Single get, checked against the oracle.
            0 => {
                let c = coord(z, xr, yr);
                let tile = server.get_tile(layer, c.z, c.x, c.y).expect("get_tile");
                assert_tile_matches(&tile, &mirror, kernel, c)?;
            }
            // Batch get (with a duplicate), every tile checked.
            1 => {
                let coords = vec![
                    coord(z, xr, yr),
                    coord(z.wrapping_add(1), xr / 2, yr / 2),
                    coord(z, xr, yr), // duplicate: must dedupe, same Arc
                    coord(z.wrapping_add(2), xr.wrapping_add(1), yr),
                ];
                let tiles = server.get_tiles(layer, &coords).expect("get_tiles");
                prop_assert!(Arc::ptr_eq(&tiles[0], &tiles[2]), "step {step}: dup split");
                for (tile, &c) in tiles.iter().zip(&coords) {
                    assert_tile_matches(tile, &mirror, kernel, c)?;
                }
            }
            // Append a small cluster; the mirror appends identically.
            2 => {
                let cx = 5.0 + f64::from(xr % 90);
                let cy = 5.0 + f64::from(yr % 90);
                let batch: Vec<Point> = (0..=(n % 4) as usize)
                    .map(|i| {
                        let o = i as f64 * 0.37;
                        Point::new((cx + o).min(100.0), (cy - o).max(0.0))
                    })
                    .collect();
                server.insert_points(layer, &batch).expect("insert");
                mirror.extend_from_slice(&batch);
            }
            // Full eviction.
            _ => server.clear_cache(),
        }
    }

    // Final sweep: every tile of zoom 0..=2 must still match the
    // mirror after the whole interleaving.
    for z in 0..=2u8 {
        for x in 0..(1u32 << z) {
            for y in 0..(1u32 << z) {
                let tile = server.get_tile(layer, z, x, y).expect("final get");
                assert_tile_matches(&tile, &mirror, kernel, TileCoord::new(z, x, y))?;
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    fn served_tiles_bit_identical_under_any_interleaving(
        budget in 0usize..4096,
        kidx in 0usize..7,
        bandwidth in 2.0f64..15.0,
        n0 in 1usize..80,
        ops in prop::collection::vec(
            (0u32..8, 0u32..8, 0u32..64, 0u32..64, 0u32..8),
            1..24,
        ),
    ) {
        for threads in [1usize, 8] {
            run_interleaving(threads, budget, kidx, bandwidth, n0, &ops)?;
        }
    }
}

#[test]
fn zero_budget_cache_still_serves_exact_tiles() {
    // Nothing ever resides: every get is a miss + compute + immediate
    // eviction of the inserted tile. Identity must be unaffected.
    let ops = vec![
        (0u32, 2u32, 1u32, 1u32, 0u32),
        (0, 2, 1, 1, 0),
        (2, 0, 30, 40, 3),
        (0, 2, 1, 1, 0),
    ];
    run_interleaving(8, 0, 3, 9.0, 40, &ops).expect("zero-budget interleaving");
}

#[test]
fn eviction_churn_with_repeated_inserts_stays_exact() {
    // A budget of ~2 tiles with inserts sprinkled between reads: tiles
    // constantly recompute over a moving point set.
    let mut ops = Vec::new();
    for i in 0..12u32 {
        ops.push((0u32, 2u32, i % 4, (i / 4) % 4, 0u32)); // get
        if i % 3 == 2 {
            ops.push((2, 0, 10 + i * 7, 20 + i * 5, 2)); // insert
        }
        if i % 5 == 4 {
            ops.push((3, 0, 0, 0, 0)); // clear
        }
    }
    let tile_bytes = TILE_PX * TILE_PX * 8 + 128;
    for threads in [1usize, 8] {
        run_interleaving(threads, 2 * tile_bytes, 1, 6.0, 60, &ops).expect("churn interleaving");
    }
}

#[test]
fn gets_racing_inserts_never_serve_stale_generations() {
    // Readers hammer a fixed set of tiles while an inserter appends
    // batches. A get that *starts* after the v-th insert completed
    // must serve bits from version ≥ v (overlapping either side is
    // linearizable, serving older is the stale-join bug): each read
    // records the completed-insert count first, then asserts the tile
    // bit-matches one of the still-admissible prefix oracles.
    use std::sync::atomic::{AtomicUsize, Ordering};

    let kernel = kernel_for(4, 7.0);
    let base = scatter(50, 9);
    let batches: Vec<Vec<Point>> = (0..4u32)
        .map(|b| {
            (0..3)
                .map(|i| {
                    let f = f64::from(b * 3 + i);
                    Point::new(10.0 + f * 6.3, 90.0 - f * 5.1)
                })
                .collect()
        })
        .collect();
    // versions[v] = point sequence after v inserts; oracle grids for
    // every (tile, version) are precomputed up front.
    let mut versions = vec![base.clone()];
    for b in &batches {
        let mut next = versions.last().unwrap().clone();
        next.extend_from_slice(b);
        versions.push(next);
    }
    let coords: Vec<TileCoord> = (0..2)
        .flat_map(|x| (0..2).map(move |y| TileCoord::new(1, x, y)))
        .collect();
    let oracles: Vec<Vec<Vec<u64>>> = coords
        .iter()
        .map(|&c| {
            versions
                .iter()
                .map(|pts| {
                    compute_tile_direct(pts, &window(), kernel, TAIL_EPS, TILE_PX, c)
                        .values()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect()
                })
                .collect()
        })
        .collect();

    let server = Arc::new(TileServer::new(TileServerConfig {
        tile_px: TILE_PX,
        max_zoom: MAX_ZOOM,
        shards: 2,
        byte_budget: 3 * (TILE_PX * TILE_PX * 8 + 128), // eviction churn too
        threads: Threads::exact(2),
        ..TileServerConfig::default()
    }));
    let layer = server
        .add_layer(base, window(), kernel, TAIL_EPS)
        .expect("layer");
    let completed = Arc::new(AtomicUsize::new(0));

    let inserter = {
        let server = Arc::clone(&server);
        let completed = Arc::clone(&completed);
        let batches = batches.clone();
        std::thread::spawn(move || {
            for b in &batches {
                server.insert_points(layer, b).expect("insert");
                completed.fetch_add(1, Ordering::SeqCst);
                for _ in 0..50 {
                    std::thread::yield_now();
                }
            }
        })
    };
    let readers: Vec<_> = (0..6)
        .map(|t: usize| {
            let server = Arc::clone(&server);
            let completed = Arc::clone(&completed);
            let coords = coords.clone();
            let oracles = oracles.clone();
            std::thread::spawn(move || {
                for i in 0..60usize {
                    let ci = (i + t) % coords.len();
                    let c = coords[ci];
                    let floor = completed.load(Ordering::SeqCst);
                    let tile = server.get_tile(layer, c.z, c.x, c.y).expect("get");
                    let bits: Vec<u64> = tile.grid.values().iter().map(|v| v.to_bits()).collect();
                    let admissible = &oracles[ci][floor..];
                    assert!(
                        admissible.contains(&bits),
                        "thread {t} read {i}: tile {c:?} matches no version ≥ {floor} \
                         — stale pre-insert bits were served"
                    );
                }
            })
        })
        .collect();
    inserter.join().expect("inserter panicked");
    for r in readers {
        r.join().expect("reader panicked");
    }
}

#[test]
fn concurrent_readers_all_serve_exact_tiles() {
    // 8 OS threads hammer overlapping tiles of a fixed layer (no
    // inserts, so the oracle is stable); every served pixel must match.
    let kernel = kernel_for(2, 8.0);
    let pts = scatter(70, 3);
    let server = Arc::new(TileServer::new(TileServerConfig {
        tile_px: TILE_PX,
        max_zoom: MAX_ZOOM,
        shards: 4,
        byte_budget: 6 * (TILE_PX * TILE_PX * 8 + 128), // forces eviction races
        threads: Threads::exact(2),
        ..TileServerConfig::default()
    }));
    let layer = server
        .add_layer(pts.clone(), window(), kernel, TAIL_EPS)
        .expect("layer");
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let server = Arc::clone(&server);
            let pts = pts.clone();
            std::thread::spawn(move || {
                for i in 0..30u32 {
                    let c = coord((i % 3) as u8 + 1, i + t, i * 3 + t);
                    let tile = server.get_tile(layer, c.z, c.x, c.y).expect("get");
                    let direct = compute_tile_direct(&pts, &window(), kernel, TAIL_EPS, TILE_PX, c);
                    for (a, b) in tile.grid.values().iter().zip(direct.values()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "thread {t} tile {c:?}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("reader thread panicked");
    }
}
