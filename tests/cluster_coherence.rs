//! Coherence property suite for the multi-node serving cluster.
//!
//! The headline invariant of `lsga_serve::cluster`: **every tile a
//! cluster serves is bit-identical to [`compute_tile_direct`] on the
//! layer's current point sequence**, under any ownership map, any
//! append/broadcast interleaving, and any *recoverable* fault schedule
//! — while doomed schedules degrade to a partial result with an exact
//! [`CoverageReport`] instead of wrong bits or a panic.
//!
//! Every scenario runs the per-node pools at 1 and 8 threads; CI
//! repeats the binary under `LSGA_THREADS` {1, 8} which additionally
//! covers the `Threads::auto()` default path. All `cluster.*`
//! counters come from sequential routing/planning loops, so the
//! thread-invariance test asserts exact equality of drained snapshots.

use lsga::core::par::Threads;
use lsga::dist::{CoverageReport, FaultKind, FaultPlan, RetryPolicy};
use lsga::obs::{self as obs, Counter};
use lsga::prelude::*;
use lsga::serve::{
    compute_tile_direct, home_node, tile_bbox, z_order_key, ClusterConfig, ClusterServer,
    TileCoord, TileServerConfig,
};
use proptest::prelude::*;
use std::sync::Mutex;

// The obs registry is process-global; tests that enable/drain it (or
// emit counters while another test has it enabled) must not overlap,
// so every test in this binary serializes here.
static LOCK: Mutex<()> = Mutex::new(());

const TILE_PX: usize = 8;
const MAX_ZOOM: u8 = 2;
const TAIL_EPS: f64 = 1e-6;

fn window() -> BBox {
    BBox::new(0.0, 0.0, 100.0, 100.0)
}

fn kernel_for(idx: usize, b: f64) -> AnyKernel {
    KernelKind::ALL[idx % KernelKind::ALL.len()].with_bandwidth(b)
}

/// Deterministic scatter inside the window.
fn scatter(n: usize, salt: u64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let f = (i as f64) + (salt as f64) * 0.618;
            Point::new(
                50.0 + (f * 0.831).sin() * 49.0,
                50.0 + (f * 0.557).cos() * 49.0,
            )
        })
        .collect()
}

/// Every tile of the pyramid up to `MAX_ZOOM`, in Z-order-friendly
/// scan order.
fn pyramid() -> Vec<TileCoord> {
    let mut coords = Vec::new();
    for z in 0..=MAX_ZOOM {
        let n = 1u32 << z;
        for y in 0..n {
            for x in 0..n {
                coords.push(TileCoord::new(z, x, y));
            }
        }
    }
    coords
}

fn cluster(nodes: usize, threads: usize) -> ClusterServer {
    ClusterServer::new(ClusterConfig {
        nodes,
        node: TileServerConfig {
            tile_px: TILE_PX,
            max_zoom: MAX_ZOOM,
            shards: 2,
            byte_budget: 1 << 20,
            threads: Threads::exact(threads),
            ..TileServerConfig::default()
        },
    })
    .expect("cluster")
}

fn assert_bits(
    served: &lsga::serve::Tile,
    mirror: &[Point],
    kernel: AnyKernel,
    c: TileCoord,
) -> Result<(), TestCaseError> {
    let direct = compute_tile_direct(mirror, &window(), kernel, TAIL_EPS, TILE_PX, c);
    for (i, (a, b)) in served.grid.values().iter().zip(direct.values()).enumerate() {
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "pixel {} of tile ({},{},{}) diverged from the oracle",
            i,
            c.z,
            c.x,
            c.y
        );
    }
    Ok(())
}

#[test]
fn ownership_map_is_total_deterministic_and_distinct() {
    let _g = LOCK.lock().unwrap();
    // Distinct tiles get distinct Z-order keys across the pyramid.
    let coords = pyramid();
    let mut keys: Vec<u64> = coords.iter().map(|&c| z_order_key(c)).collect();
    keys.sort_unstable();
    let before = keys.len();
    keys.dedup();
    assert_eq!(
        before,
        keys.len(),
        "z_order_key collided inside the pyramid"
    );

    // Homes are total and stable, and with all nodes alive the route
    // is the home.
    for nodes in 1..=5 {
        let c = cluster(nodes, 1);
        for &coord in &coords {
            let home = home_node(coord, nodes);
            assert!(home < nodes);
            assert_eq!(home, home_node(coord, nodes), "home not deterministic");
            assert_eq!(c.route(coord).expect("route"), home);
        }
    }
}

#[test]
fn routing_rehomes_a_dead_nodes_range_to_survivors() {
    let _g = LOCK.lock().unwrap();
    let c = cluster(3, 1);
    let coords = pyramid();
    c.kill_node(1);
    assert_eq!(c.alive_nodes(), vec![0, 2]);
    for &coord in &coords {
        let w = c.route(coord).expect("route with survivors");
        assert_ne!(w, 1, "routed to a dead node");
        let home = home_node(coord, 3);
        if home == 1 {
            // The rotation re-homes node 1's range to node 2 first.
            assert_eq!(w, 2);
        } else {
            assert_eq!(w, home, "live homes must keep their range");
        }
    }
    c.kill_node(2);
    for &coord in &coords {
        assert_eq!(c.route(coord).expect("one survivor"), 0);
    }
    c.kill_node(0);
    assert!(c.route(coords[0]).is_err(), "no survivors must refuse");
}

/// Appends broadcast to every live node; a node killed between
/// appends goes stale but is never routed to, so every served tile —
/// including the dead node's re-homed range — reflects the full point
/// sequence.
#[test]
fn node_death_mid_invalidation_keeps_survivors_coherent() {
    let _g = LOCK.lock().unwrap();
    let kernel = kernel_for(2, 9.0);
    let c = cluster(3, 4);
    let mut mirror = scatter(160, 1);
    let layer = c
        .add_layer(mirror.clone(), window(), kernel, TAIL_EPS)
        .expect("layer");
    let coords = pyramid();

    // Warm every node's cache, then append (broadcast #1).
    let served = c.get_tiles(layer, &coords).expect("warm");
    assert_eq!(served.len(), coords.len());
    let batch1 = scatter(40, 7);
    c.insert_points(layer, &batch1).expect("append 1");
    mirror.extend_from_slice(&batch1);
    assert_eq!(c.generation(), 1);

    // Kill a node mid-stream, then append again (broadcast #2 reaches
    // only the survivors).
    c.kill_node(1);
    let batch2 = scatter(40, 13);
    c.insert_points(layer, &batch2).expect("append 2");
    mirror.extend_from_slice(&batch2);
    assert_eq!(c.generation(), 2);

    // Every tile — the dead node's re-homed range included — serves
    // post-append bits.
    for &coord in &coords {
        let tile = c
            .get_tile(layer, coord.z, coord.x, coord.y)
            .expect("survivor serve");
        let direct = compute_tile_direct(&mirror, &window(), kernel, TAIL_EPS, TILE_PX, coord);
        for (a, b) in tile.grid.values().iter().zip(direct.values()) {
            assert_eq!(a.to_bits(), b.to_bits(), "stale bits after node death");
        }
    }
}

/// A schedule that exhausts one tile's retry budget degrades to a
/// partial batch with that tile `None` and an exact coverage report —
/// and every tile that *did* execute still carries oracle bits.
#[test]
fn doomed_plan_degrades_to_a_coverage_report() {
    let _g = LOCK.lock().unwrap();
    let kernel = kernel_for(0, 8.0);
    let c = cluster(3, 2);
    let mirror = scatter(120, 3);
    let layer = c
        .add_layer(mirror.clone(), window(), kernel, TAIL_EPS)
        .expect("layer");
    let coords = pyramid();
    let policy = RetryPolicy::default();

    let doomed = 2usize;
    let mut plan = FaultPlan::none();
    for attempt in 0..policy.max_attempts {
        plan.push(doomed, attempt, FaultKind::TaskError);
    }

    let out = c
        .get_tiles_supervised(layer, &coords, &plan, &policy)
        .expect("supervised");
    assert_eq!(out.tiles.len(), coords.len());
    assert!(out.tiles[doomed].is_none(), "doomed tile must be absent");
    assert!(!out.report.is_complete());
    assert!(out.report.fraction() < 1.0);
    assert!(out.report.abandoned.contains(&doomed));
    assert!(!out.schedule.tiles[doomed].executed());
    for (t, (tile, &coord)) in out.tiles.iter().zip(&coords).enumerate() {
        if t == doomed {
            continue;
        }
        let tile = tile.as_ref().expect("non-doomed tile executed");
        let direct = compute_tile_direct(&mirror, &window(), kernel, TAIL_EPS, TILE_PX, coord);
        for (a, b) in tile.grid.values().iter().zip(direct.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    // The degenerate doom: kill every node, and a supervised batch
    // reports zero coverage instead of erroring.
    for w in 0..3 {
        c.kill_node(w);
    }
    let out = c
        .get_tiles_supervised(layer, &coords, &FaultPlan::none(), &policy)
        .expect("fully dead cluster still degrades");
    assert!(out.tiles.iter().all(Option::is_none));
    assert_eq!(out.report.fraction(), 0.0);
    assert_eq!(
        CoverageReport::from_schedule(&out.schedule, &vec![1; coords.len()]).executed_tiles,
        0
    );
}

/// A crash fault kills the owning node; its tiles re-home to the next
/// survivor with the halo re-shipped, and the cluster counters account
/// the re-homing exactly (they are planned sequentially, so the audit
/// is an equality, not a bound).
#[test]
fn crash_rehoming_charges_halo_bytes_exactly() {
    let _g = LOCK.lock().unwrap();
    let kernel = kernel_for(1, 10.0);
    let radius = kernel.effective_radius(TAIL_EPS);
    let c = cluster(3, 2);
    let mirror = scatter(140, 5);
    let layer = c
        .add_layer(mirror.clone(), window(), kernel, TAIL_EPS)
        .expect("layer");
    let coords = pyramid();
    let policy = RetryPolicy::default();

    // Crash the home of coords[4] on its first attempt.
    let victim_tile = 4usize;
    let victim_node = home_node(coords[victim_tile], 3);
    let plan = FaultPlan::none().with(victim_tile, 0, FaultKind::CrashBeforeTask);

    obs::reset();
    obs::enable();
    let out = c
        .get_tiles_supervised(layer, &coords, &plan, &policy)
        .expect("supervised");
    let rehomed_planned: u64 = out
        .schedule
        .tiles
        .iter()
        .filter(|o| o.executed() && o.final_worker != Some(o.initial_worker))
        .count() as u64;
    let reshipped_planned: u64 = out.schedule.tiles.iter().map(|o| o.reshipped_bytes).sum();
    let snap = obs::drain();
    obs::disable();

    // The schedule: victim node dead, victim tile recovered elsewhere.
    assert_eq!(out.schedule.dead_workers, vec![victim_node]);
    assert!(!c.is_alive(victim_node));
    let vo = &out.schedule.tiles[victim_tile];
    assert!(vo.executed() && vo.recovered());
    assert_ne!(vo.final_worker, Some(victim_node));
    assert_eq!(vo.reshipments, 1);

    // Exact byte audit: the halo of the victim tile is the points in
    // its kernel-inflated bbox at 16 bytes each.
    let halo = tile_bbox(&window(), coords[victim_tile]).inflate(radius);
    let halo_points = mirror.iter().filter(|p| halo.contains(p)).count() as u64;
    assert_eq!(vo.reshipped_bytes, halo_points * 16);

    // Counters mirror the schedule exactly.
    assert_eq!(snap.counter("cluster.node_deaths"), 1);
    assert_eq!(snap.counter("cluster.tiles_rehomed"), rehomed_planned);
    assert_eq!(snap.counter("cluster.reshipped_bytes"), reshipped_planned);
    assert!(rehomed_planned >= 1);
    assert_eq!(snap.counter("cluster.routed_requests"), coords.len() as u64);
    // The re-home span was emitted for each re-homed serve.
    let spans = snap.spans();
    let rehome = spans
        .iter()
        .find(|s| s.name == "cluster.rehome")
        .expect("cluster.rehome span");
    assert_eq!(rehome.count, rehomed_planned);

    // And the recovered tiles are still oracle bits.
    for (tile, &coord) in out.tiles.iter().zip(&coords) {
        let tile = tile.as_ref().expect("recoverable plan covers all");
        let direct = compute_tile_direct(&mirror, &window(), kernel, TAIL_EPS, TILE_PX, coord);
        for (a, b) in tile.grid.values().iter().zip(direct.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    assert!(out.report.is_complete());
}

/// One randomized cluster storm at a given pool width: seeded appends,
/// a seeded fault schedule, and a full-pyramid supervised batch, every
/// served tile checked against the oracle.
#[allow(clippy::too_many_arguments)]
fn run_storm(
    threads: usize,
    nodes: usize,
    kidx: usize,
    bandwidth: f64,
    n0: usize,
    appends: usize,
    seed: u64,
    crashes: bool,
) -> Result<(), TestCaseError> {
    let kernel = kernel_for(kidx, bandwidth);
    let c = cluster(nodes, threads);
    let mut mirror = scatter(n0, seed);
    let layer = c
        .add_layer(mirror.clone(), window(), kernel, TAIL_EPS)
        .expect("layer");
    let coords = pyramid();
    let policy = RetryPolicy::default();

    for a in 0..appends {
        let batch = scatter(20 + a * 7, seed ^ (a as u64 + 11));
        c.insert_points(layer, &batch).expect("broadcast append");
        mirror.extend_from_slice(&batch);
        // Interleave plain routed reads with the appends.
        let probe = coords[(seed as usize + a * 5) % coords.len()];
        let tile = c
            .get_tile(layer, probe.z, probe.x, probe.y)
            .expect("routed read");
        assert_bits(&tile, &mirror, kernel, probe)?;
    }

    let plan = if crashes {
        // May kill nodes and may doom tiles: served bits must still be
        // oracle bits, and misses must be reported exactly.
        FaultPlan::seeded(seed, coords.len(), 4)
    } else {
        // Never kills a node and always recoverable: full coverage.
        FaultPlan::seeded_recoverable(seed, coords.len(), 6)
    };
    let out = c
        .get_tiles_supervised(layer, &coords, &plan, &policy)
        .expect("supervised storm");
    prop_assert_eq!(out.tiles.len(), coords.len());

    let mut absent = Vec::new();
    for (t, (tile, &coord)) in out.tiles.iter().zip(&coords).enumerate() {
        match tile {
            Some(tile) => assert_bits(tile, &mirror, kernel, coord)?,
            None => absent.push(t),
        }
    }
    prop_assert_eq!(absent.clone(), out.report.abandoned.clone());
    prop_assert_eq!(out.report.is_complete(), absent.is_empty());
    if !crashes {
        prop_assert!(
            absent.is_empty(),
            "recoverable schedule must cover every tile"
        );
    }

    // After the storm the cluster keeps serving: every tile from a
    // plain routed read still matches the oracle (dead homes re-homed).
    if !c.alive_nodes().is_empty() {
        for &coord in coords.iter().step_by(3) {
            let tile = c
                .get_tile(layer, coord.z, coord.x, coord.y)
                .expect("post-storm read");
            assert_bits(&tile, &mirror, kernel, coord)?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: seeded fault plans × ownership maps ×
    /// pool widths {1, 8}, every served tile bit-identical to the
    /// single-node oracle, every miss reported.
    fn supervised_storms_serve_oracle_bits(
        nodes in 1usize..=5,
        kidx in 0usize..7,
        bandwidth in 6.0f64..14.0,
        n0 in 60usize..160,
        appends in 0usize..3,
        seed in 0u64..1_000_000,
        crashes in any::<bool>(),
    ) {
        let _g = LOCK.lock().unwrap();
        for &threads in &[1usize, 8] {
            run_storm(threads, nodes, kidx, bandwidth, n0, appends, seed, crashes)?;
        }
    }
}

/// The `cluster.*` observability is planned sequentially, so drained
/// snapshots are exactly equal across per-node pool widths.
#[test]
fn cluster_counters_are_thread_invariant() {
    let _g = LOCK.lock().unwrap();
    let run = |threads: usize| {
        obs::reset();
        obs::enable();
        let kernel = kernel_for(3, 8.5);
        let c = cluster(4, threads);
        let mut mirror = scatter(130, 9);
        let layer = c
            .add_layer(mirror.clone(), window(), kernel, TAIL_EPS)
            .expect("layer");
        let coords = pyramid();
        let batch = scatter(30, 21);
        c.insert_points(layer, &batch).expect("append");
        mirror.extend_from_slice(&batch);
        let plan = FaultPlan::seeded(77, coords.len(), 5);
        let out = c
            .get_tiles_supervised(layer, &coords, &plan, &RetryPolicy::default())
            .expect("supervised");
        let snap = obs::drain();
        obs::disable();
        let mut values: Vec<(String, u64)> = [
            "cluster.routed_requests",
            "cluster.invalidations_broadcast",
            "cluster.node_deaths",
            "cluster.tiles_rehomed",
            "cluster.reshipped_bytes",
        ]
        .iter()
        .map(|&n| (n.to_string(), snap.counter(n)))
        .collect();
        values.push(("abandoned".into(), out.report.abandoned.len() as u64));
        values
    };
    assert_eq!(run(1), run(8), "cluster.* diverged across pool widths");
}

#[test]
fn cluster_counters_are_registered() {
    let _g = LOCK.lock().unwrap();
    let names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
    for n in [
        "cluster.routed_requests",
        "cluster.invalidations_broadcast",
        "cluster.node_deaths",
        "cluster.tiles_rehomed",
        "cluster.reshipped_bytes",
    ] {
        assert!(names.contains(&n), "missing counter {n}");
    }
}
