//! Multi-analytic serving coherence: every [`TileCompute`] kind served
//! through the *same* cache/flight/invalidation machinery must be
//! **bit-identical** to its direct analytic under any cache state,
//! eviction pressure, insert interleaving, node death, and pool width.
//!
//! The proptest drives randomized get/batch/insert/kill interleavings
//! against a 3-node cluster carrying all four layer kinds — KDV,
//! STKDV (time-binned), NKDV (network raster), and Gi*/LISA hotspot
//! overlays — simultaneously, at pool widths 1 and 8, checking every
//! read bit-for-bit against the per-kind direct oracle over the mirror
//! of committed appends. The directed tests pin the cross-kind cache
//! contracts: an insert into one layer must never invalidate another
//! kind's tiles unless its dirty region actually reaches them, and an
//! STKDV time-bin key must never collide with a spatial-only key.

use lsga::core::par::Threads;
use lsga::prelude::*;
use lsga::serve::{
    compute_tile_direct, hotspot_overlay, nkdv_snap_index, rasterize_lixel_values,
    resample_overlay, snap_batch, tile_grid_spec, ClusterConfig, ClusterServer, HotspotCompute,
    HotspotStat, LayerId, LayerKind, NkdvCompute, StkdvCompute, TileCoord, TileKey, TileServer,
    TileServerConfig,
};
use lsga::{kdv, network, obs};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

// The obs registry is process-global and some tests below drain it, so
// every test in this binary serializes here.
static LOCK: Mutex<()> = Mutex::new(());

const TILE_PX: usize = 8;
const MAX_ZOOM: u8 = 2;
const TAIL_EPS: f64 = 1e-6;
const T_MIN: f64 = 0.0;
const T_MAX: f64 = 50.0;
const NT: u32 = 4;
const CELLS: usize = 5;
const BAND: f64 = 25.0;

fn window() -> BBox {
    BBox::new(0.0, 0.0, 100.0, 100.0)
}

fn kdv_kernel() -> AnyKernel {
    KernelKind::Quartic.with_bandwidth(8.0)
}

fn st_spatial() -> AnyKernel {
    KernelKind::Epanechnikov.with_bandwidth(12.0)
}

fn st_temporal() -> PolyKernel {
    PolyKernel::new(KernelKind::Quartic, 8.0).expect("temporal kernel")
}

fn nkdv_kernel() -> AnyKernel {
    KernelKind::Quartic.with_bandwidth(15.0)
}

fn scatter(n: usize, salt: u64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let f = (i as f64) + (salt as f64) * 0.618;
            Point::new(
                50.0 + (f * 0.831).sin() * 49.0,
                50.0 + (f * 0.557).cos() * 49.0,
            )
        })
        .collect()
}

fn timed_scatter(n: usize, salt: u64) -> Vec<TimedPoint> {
    scatter(n, salt)
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let f = (i as f64) + (salt as f64) * 0.917;
            TimedPoint::new(p.x, p.y, 25.0 + (f * 0.433).sin() * 24.9)
        })
        .collect()
}

/// The registration-fixed pieces every oracle needs: the NKDV network
/// and lixelization (shared `Arc`s with the server), the snap index the
/// server uses, and the hotspot statistic under test.
struct Fixture {
    net: Arc<RoadNetwork>,
    lixels: Arc<Lixels>,
    snap: network::SegmentIndex,
    stat: HotspotStat,
}

impl Fixture {
    fn new(stat: HotspotStat) -> Self {
        // A 6×6 grid with 20-unit blocks spans exactly the 0..100
        // window the planar layers use.
        let net = Arc::new(network::grid_network(6, 6, 20.0));
        let lixels = Arc::new(Lixels::build(&net, 5.0));
        let snap = nkdv_snap_index(&net, &lixels);
        Fixture {
            net,
            lixels,
            snap,
            stat,
        }
    }

    /// The NKDV layer's pyramid window (same arithmetic as
    /// `NkdvCompute::new`).
    fn nkdv_window(&self) -> BBox {
        let radius = nkdv_kernel().effective_radius(kdv::DEFAULT_TAIL_EPS);
        self.net.bbox().inflate(radius.max(1e-9))
    }
}

/// The committed append prefix per layer — what each oracle recomputes
/// from scratch.
struct Mirrors {
    kdv: Vec<Point>,
    st: Vec<TimedPoint>,
    events: Vec<EdgePosition>,
    hot: Vec<Point>,
}

struct Layers {
    kdv: LayerId,
    st: LayerId,
    nkdv: LayerId,
    hot: LayerId,
}

fn node_config(threads: usize) -> TileServerConfig {
    TileServerConfig {
        tile_px: TILE_PX,
        max_zoom: MAX_ZOOM,
        shards: 2,
        byte_budget: 64 * 1024, // small: eviction pressure is part of the test
        threads: Threads::exact(threads),
        ..TileServerConfig::default()
    }
}

/// Register all four kinds on a cluster, in a fixed order.
fn add_all_layers(c: &ClusterServer, fx: &Fixture, m: &Mirrors) -> Layers {
    let kdv = c
        .add_layer(m.kdv.clone(), window(), kdv_kernel(), TAIL_EPS)
        .expect("kdv layer");
    let st = c
        .add_compute_layer(
            Arc::new(
                StkdvCompute::new(
                    &m.st,
                    window(),
                    st_spatial(),
                    st_temporal(),
                    T_MIN,
                    T_MAX,
                    NT as usize,
                    TAIL_EPS,
                )
                .expect("stkdv compute"),
            ),
            st_spatial().effective_radius(TAIL_EPS),
            m.st.iter().map(|p| p.point).collect(),
        )
        .expect("stkdv layer");
    let nkdv = c
        .add_compute_layer(
            Arc::new(
                NkdvCompute::new(
                    Arc::clone(&fx.net),
                    Arc::clone(&fx.lixels),
                    &m.events,
                    nkdv_kernel(),
                )
                .expect("nkdv compute"),
            ),
            nkdv_kernel().effective_radius(kdv::DEFAULT_TAIL_EPS),
            m.events.iter().map(|ev| ev.point(&fx.net)).collect(),
        )
        .expect("nkdv layer");
    let hot = c
        .add_compute_layer(
            Arc::new(
                HotspotCompute::new(&m.hot, window(), CELLS, BAND, fx.stat)
                    .expect("hotspot compute"),
            ),
            BAND,
            m.hot.clone(),
        )
        .expect("hotspot layer");
    Layers { kdv, st, nkdv, hot }
}

fn assert_tile_bits(
    tile: &lsga::serve::Tile,
    expected: &DensityGrid,
    what: &str,
    c: TileCoord,
) -> Result<(), TestCaseError> {
    let a = tile.grid.values();
    let b = expected.values();
    prop_assert_eq!(a.len(), b.len(), "{}: pixel count", what);
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{}: pixel {} of tile ({},{},{}) diverged from the direct oracle",
            what,
            i,
            c.z,
            c.x,
            c.y
        );
    }
    Ok(())
}

fn oracle_kdv(m: &Mirrors, c: TileCoord) -> DensityGrid {
    compute_tile_direct(&m.kdv, &window(), kdv_kernel(), TAIL_EPS, TILE_PX, c)
}

fn oracle_st(m: &Mirrors, c: TileCoord, bin: u32) -> DensityGrid {
    let spec = tile_grid_spec(&window(), TILE_PX, c);
    let cube = kdv::stkdv_sweep_threads(
        &m.st,
        spec,
        T_MIN,
        T_MAX,
        NT as usize,
        st_spatial(),
        st_temporal(),
        TAIL_EPS,
        Threads::exact(1),
    );
    cube.slice(bin as usize)
}

fn oracle_nkdv(fx: &Fixture, m: &Mirrors, c: TileCoord) -> DensityGrid {
    let spec = tile_grid_spec(&fx.nkdv_window(), TILE_PX, c);
    let density =
        kdv::nkdv_forward(&fx.net, &fx.lixels, &m.events, nkdv_kernel()).expect("valid events");
    rasterize_lixel_values(&fx.net, &fx.lixels, density.values(), spec)
}

fn oracle_hot(fx: &Fixture, m: &Mirrors, c: TileCoord) -> DensityGrid {
    let overlay =
        hotspot_overlay(&m.hot, window(), CELLS, BAND, fx.stat).expect("valid hotspot inputs");
    resample_overlay(&overlay, tile_grid_spec(&window(), TILE_PX, c))
}

fn coord(z_raw: u32, x_raw: u32, y_raw: u32) -> TileCoord {
    let z = (z_raw % u32::from(MAX_ZOOM + 1)) as u8;
    let per = 1u32 << z;
    TileCoord::new(z, x_raw % per, y_raw % per)
}

/// One randomized interleaving over a cluster carrying all four kinds.
#[allow(clippy::too_many_lines)]
fn run_multilayer_interleaving(
    threads: usize,
    lisa: bool,
    ops: &[(u32, u32, u32, u32, u32)],
) -> Result<(), TestCaseError> {
    let stat = if lisa {
        HotspotStat::Lisa {
            permutations: 19,
            seed: 7,
        }
    } else {
        HotspotStat::GiStar
    };
    let fx = Fixture::new(stat);
    let mut m = Mirrors {
        kdv: scatter(40, 1),
        st: timed_scatter(30, 2),
        events: network::sample_on_network(&fx.net, 25, 8),
        hot: scatter(35, 3),
    };
    let cluster = ClusterServer::new(ClusterConfig {
        nodes: 3,
        node: node_config(threads),
    })
    .expect("cluster");
    let layers = add_all_layers(&cluster, &fx, &m);

    // Registration must stamp each layer with its kind on every node.
    for w in 0..cluster.node_count() {
        let n = cluster.node(w);
        prop_assert_eq!(n.layer_kind(layers.kdv).unwrap(), LayerKind::Kdv);
        prop_assert_eq!(n.layer_kind(layers.st).unwrap(), LayerKind::Stkdv);
        prop_assert_eq!(n.layer_kind(layers.nkdv).unwrap(), LayerKind::Nkdv);
        prop_assert_eq!(n.layer_kind(layers.hot).unwrap(), LayerKind::Hotspot);
        prop_assert_eq!(n.time_bins(layers.st).unwrap(), NT);
    }

    for &(sel, a, b, yr, n) in ops {
        let len = 1 + (n as usize % 4);
        match sel % 10 {
            0 => {
                let batch = scatter(len, u64::from(a) * 131 + 11);
                cluster
                    .insert_points(layers.kdv, &batch)
                    .expect("kdv insert");
                m.kdv.extend_from_slice(&batch);
            }
            1 => {
                let batch = timed_scatter(len, u64::from(a) * 157 + 13);
                cluster
                    .insert_timed_points(layers.st, &batch)
                    .expect("stkdv insert");
                m.st.extend_from_slice(&batch);
            }
            2 => {
                let batch = scatter(len, u64::from(a) * 173 + 17);
                cluster
                    .insert_points(layers.nkdv, &batch)
                    .expect("nkdv insert");
                // Mirror snaps through the same index the server built.
                m.events
                    .extend(snap_batch(&fx.net, &fx.snap, &batch).expect("snap"));
            }
            3 => {
                let batch = scatter(len, u64::from(a) * 193 + 19);
                cluster
                    .insert_points(layers.hot, &batch)
                    .expect("hotspot insert");
                m.hot.extend_from_slice(&batch);
            }
            4 => {
                // Kill a node, but never the last one.
                let w = a as usize % cluster.node_count();
                if cluster.alive_nodes().len() > 1 {
                    cluster.kill_node(w);
                }
            }
            5 => {
                let c = coord(a, b, yr);
                let tile = cluster
                    .get_tile(layers.kdv, c.z, c.x, c.y)
                    .expect("kdv get");
                assert_tile_bits(&tile, &oracle_kdv(&m, c), "kdv", c)?;
            }
            6 => {
                let c = coord(a, b, yr);
                let bin = n % NT;
                let tile = cluster
                    .get_tile_binned(layers.st, c.z, c.x, c.y, bin)
                    .expect("stkdv get");
                assert_tile_bits(&tile, &oracle_st(&m, c, bin), "stkdv", c)?;
            }
            7 => {
                let c = coord(a, b, yr);
                let tile = cluster
                    .get_tile(layers.nkdv, c.z, c.x, c.y)
                    .expect("nkdv get");
                assert_tile_bits(&tile, &oracle_nkdv(&fx, &m, c), "nkdv", c)?;
            }
            8 => {
                let c = coord(a, b, yr);
                let tile = cluster
                    .get_tile(layers.hot, c.z, c.x, c.y)
                    .expect("hotspot get");
                assert_tile_bits(&tile, &oracle_hot(&fx, &m, c), "hotspot", c)?;
            }
            _ => {
                // Batch read across zooms on the KDV layer.
                let coords: Vec<TileCoord> = (0..3u32).map(|d| coord(a + d, b + d, yr)).collect();
                let tiles = cluster.get_tiles(layers.kdv, &coords).expect("get_tiles");
                for (tile, &c) in tiles.iter().zip(&coords) {
                    assert_tile_bits(tile, &oracle_kdv(&m, c), "kdv batch", c)?;
                }
            }
        }
    }

    // Final sweep: the zoom-1 pyramid of every kind, every STKDV bin.
    for x in 0..2u32 {
        for y in 0..2u32 {
            let c = TileCoord::new(1, x, y);
            let t = cluster.get_tile(layers.kdv, 1, x, y).expect("final kdv");
            assert_tile_bits(&t, &oracle_kdv(&m, c), "final kdv", c)?;
            for bin in 0..NT {
                let t = cluster
                    .get_tile_binned(layers.st, 1, x, y, bin)
                    .expect("final stkdv");
                assert_tile_bits(&t, &oracle_st(&m, c, bin), "final stkdv", c)?;
            }
            let t = cluster.get_tile(layers.nkdv, 1, x, y).expect("final nkdv");
            assert_tile_bits(&t, &oracle_nkdv(&fx, &m, c), "final nkdv", c)?;
            let t = cluster
                .get_tile(layers.hot, 1, x, y)
                .expect("final hotspot");
            assert_tile_bits(&t, &oracle_hot(&fx, &m, c), "final hotspot", c)?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    fn all_kinds_bit_identical_under_interleaving(
        lisa in any::<bool>(),
        ops in prop::collection::vec(
            (0u32..10, 0u32..64, 0u32..64, 0u32..64, 0u32..8),
            1..22,
        ),
    ) {
        let _g = LOCK.lock().unwrap();
        for threads in [1usize, 8] {
            run_multilayer_interleaving(threads, lisa, &ops)?;
        }
    }
}

/// A single-server (non-cluster) pass over all four kinds: the plain
/// `TileServer` path must serve the same bits the oracle computes, warm
/// and cold.
#[test]
fn single_server_serves_every_kind_exactly() {
    let _g = LOCK.lock().unwrap();
    let fx = Fixture::new(HotspotStat::GiStar);
    let m = Mirrors {
        kdv: scatter(50, 4),
        st: timed_scatter(40, 5),
        events: network::sample_on_network(&fx.net, 30, 9),
        hot: scatter(45, 6),
    };
    for threads in [1usize, 8] {
        let s = TileServer::new(node_config(threads));
        let kdv = s
            .add_layer(m.kdv.clone(), window(), kdv_kernel(), TAIL_EPS)
            .expect("kdv layer");
        let st = s
            .add_compute_layer(Arc::new(
                StkdvCompute::new(
                    &m.st,
                    window(),
                    st_spatial(),
                    st_temporal(),
                    T_MIN,
                    T_MAX,
                    NT as usize,
                    TAIL_EPS,
                )
                .expect("stkdv compute"),
            ))
            .expect("stkdv layer");
        let nk = s
            .add_compute_layer(Arc::new(
                NkdvCompute::new(
                    Arc::clone(&fx.net),
                    Arc::clone(&fx.lixels),
                    &m.events,
                    nkdv_kernel(),
                )
                .expect("nkdv compute"),
            ))
            .expect("nkdv layer");
        let hot = s
            .add_compute_layer(Arc::new(
                HotspotCompute::new(&m.hot, window(), CELLS, BAND, fx.stat)
                    .expect("hotspot compute"),
            ))
            .expect("hotspot layer");

        for pass in 0..2 {
            // Pass 0 is cold (computes), pass 1 warm (cache hits) —
            // both must produce identical bits.
            for x in 0..2u32 {
                for y in 0..2u32 {
                    let c = TileCoord::new(1, x, y);
                    let t = s.get_tile(kdv, 1, x, y).expect("kdv");
                    assert_tile_bits(&t, &oracle_kdv(&m, c), "kdv", c).unwrap();
                    for bin in 0..NT {
                        let t = s.get_tile_binned(st, 1, x, y, bin).expect("stkdv");
                        assert_tile_bits(&t, &oracle_st(&m, c, bin), "stkdv", c).unwrap();
                    }
                    let t = s.get_tile(nk, 1, x, y).expect("nkdv");
                    assert_tile_bits(&t, &oracle_nkdv(&fx, &m, c), "nkdv", c).unwrap();
                    let t = s.get_tile(hot, 1, x, y).expect("hotspot");
                    assert_tile_bits(&t, &oracle_hot(&fx, &m, c), "hotspot", c).unwrap();
                }
            }
            let _ = pass;
        }
    }
}

/// Cross-kind cache isolation: an insert into the KDV layer must sweep
/// only KDV cache entries, leaving the NKDV layer's tiles warm — and
/// an NKDV insert must invalidate exactly the NKDV tiles whose bbox
/// its inflated dirty region reaches.
#[test]
fn inserts_do_not_invalidate_other_kinds() {
    let _g = LOCK.lock().unwrap();
    let fx = Fixture::new(HotspotStat::GiStar);
    let s = TileServer::new(node_config(2));
    let kdv = s
        .add_layer(scatter(40, 1), window(), kdv_kernel(), TAIL_EPS)
        .expect("kdv layer");
    let nk = s
        .add_compute_layer(Arc::new(
            NkdvCompute::new(
                Arc::clone(&fx.net),
                Arc::clone(&fx.lixels),
                &network::sample_on_network(&fx.net, 20, 3),
                nkdv_kernel(),
            )
            .expect("nkdv compute"),
        ))
        .expect("nkdv layer");

    obs::reset();
    obs::enable();
    // Warm one KDV tile and two NKDV tiles (opposite quadrants).
    let _ = s.get_tile(kdv, 1, 0, 0).expect("warm kdv");
    let _ = s.get_tile(nk, 1, 0, 0).expect("warm nkdv ll");
    let _ = s.get_tile(nk, 1, 1, 1).expect("warm nkdv ur");
    assert_eq!(s.cached_tiles(), 3);

    // A KDV batch in the lower-left quadrant: the KDV tile dies, both
    // NKDV tiles must survive.
    s.insert_points(kdv, &[Point::new(20.0, 20.0)])
        .expect("kdv insert");
    assert!(
        s.cached_tier(kdv, 1, 0, 0).is_none(),
        "kdv tile must be invalidated by its own layer's insert"
    );
    assert!(
        s.cached_tier(nk, 1, 0, 0).is_some() && s.cached_tier(nk, 1, 1, 1).is_some(),
        "kdv insert must not touch nkdv entries"
    );

    // An NKDV batch near the lower-left corner: its dirty region
    // (snap + kernel support 15) cannot reach the upper-right tile.
    s.insert_points(nk, &[Point::new(10.0, 10.0)])
        .expect("nkdv insert");
    assert!(
        s.cached_tier(nk, 1, 0, 0).is_none(),
        "overlapping nkdv tile must be invalidated"
    );
    assert!(
        s.cached_tier(nk, 1, 1, 1).is_some(),
        "nkdv tile outside the dirty bbox must stay warm"
    );

    let snap = obs::drain();
    obs::disable();
    assert_eq!(snap.counter("serve.tiles_computed{kind=kdv}"), 1);
    assert_eq!(snap.counter("serve.tiles_computed{kind=nkdv}"), 2);
    assert_eq!(snap.counter("serve.tiles_invalidated{kind=kdv}"), 1);
    assert_eq!(snap.counter("serve.tiles_invalidated{kind=nkdv}"), 1);
    assert_eq!(snap.counter("serve.tiles_invalidated{kind=stkdv}"), 0);
    assert_eq!(snap.counter("serve.tiles_invalidated{kind=hotspot}"), 0);
}

/// STKDV time-bin keys are first-class cache keys: distinct bins of one
/// coordinate are distinct entries, and bin 0 *is* the spatial-only
/// key — `get_tile` and `get_tile_binned(.., 0)` share one entry.
#[test]
fn stkdv_bins_key_the_cache_without_colliding() {
    let _g = LOCK.lock().unwrap();
    let m = timed_scatter(40, 11);
    let s = TileServer::new(node_config(2));
    let st = s
        .add_compute_layer(Arc::new(
            StkdvCompute::new(
                &m,
                window(),
                st_spatial(),
                st_temporal(),
                T_MIN,
                T_MAX,
                NT as usize,
                TAIL_EPS,
            )
            .expect("stkdv compute"),
        ))
        .expect("stkdv layer");

    // The key arithmetic itself: bin 0 collapses onto the spatial key.
    let c = TileCoord::new(1, 0, 1);
    assert_eq!(TileKey::binned(st, c, 0), TileKey::new(st, c));
    assert_ne!(TileKey::binned(st, c, 1), TileKey::new(st, c));

    // Four bins of one coordinate: four distinct cache entries.
    for bin in 0..NT {
        let _ = s.get_tile_binned(st, 0, 0, 0, bin).expect("binned get");
    }
    assert_eq!(s.cached_tiles(), NT as usize, "each bin caches separately");

    // The spatial-only read of the same coordinate is bin 0's entry —
    // a hit, not a fifth entry.
    let spatial = s.get_tile(st, 0, 0, 0).expect("spatial get");
    assert_eq!(s.cached_tiles(), NT as usize);
    let binned = s.get_tile_binned(st, 0, 0, 0, 0).expect("bin 0 get");
    for (a, b) in spatial.grid.values().iter().zip(binned.grid.values()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // And the bins carry genuinely different data: at least one pair
    // of slices must differ (the timed scatter spreads across bins).
    let bits: Vec<Vec<u64>> = (0..NT)
        .map(|bin| {
            s.get_tile_binned(st, 0, 0, 0, bin)
                .expect("reread")
                .grid
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    assert!(
        bits.windows(2).any(|w| w[0] != w[1]),
        "all time slices identical — the bin dimension is inert"
    );

    // Out-of-range bins are a client error, not a panic.
    assert!(s.get_tile_binned(st, 0, 0, 0, NT).is_err());
}

/// Kind mismatches at the append boundary are rejected cleanly: planar
/// batches into an STKDV layer and timed batches into planar layers.
#[test]
fn wrong_batch_shape_is_rejected_per_kind() {
    let _g = LOCK.lock().unwrap();
    let fx = Fixture::new(HotspotStat::GiStar);
    let s = TileServer::new(node_config(1));
    let kdv = s
        .add_layer(scatter(10, 1), window(), kdv_kernel(), TAIL_EPS)
        .expect("kdv layer");
    let st = s
        .add_compute_layer(Arc::new(
            StkdvCompute::new(
                &timed_scatter(10, 2),
                window(),
                st_spatial(),
                st_temporal(),
                T_MIN,
                T_MAX,
                NT as usize,
                TAIL_EPS,
            )
            .expect("stkdv compute"),
        ))
        .expect("stkdv layer");
    let hot = s
        .add_compute_layer(Arc::new(
            HotspotCompute::new(&scatter(10, 3), window(), CELLS, BAND, fx.stat)
                .expect("hotspot compute"),
        ))
        .expect("hotspot layer");

    assert!(s.insert_points(st, &scatter(2, 9)).is_err());
    assert!(s.insert_timed_points(kdv, &timed_scatter(2, 9)).is_err());
    assert!(s.insert_timed_points(hot, &timed_scatter(2, 9)).is_err());
    // Valid shapes still land after the rejections.
    s.insert_points(kdv, &scatter(2, 10)).expect("kdv insert");
    s.insert_timed_points(st, &timed_scatter(2, 10))
        .expect("stkdv insert");
    s.insert_points(hot, &scatter(2, 10)).expect("hot insert");
}
