//! End-to-end coherence suite for the HTTP tile front-end.
//!
//! Everything here goes over real sockets — `TcpStream` to a bound
//! [`HttpServer`](lsga::http::HttpServer) — and checks the three
//! serving guarantees at the wire level:
//!
//! 1. **Bit-identity**: the f64 payload of a served tile decodes to
//!    exactly the pixels of [`compute_tile_direct`] — fresh index, no
//!    server, no cache — compared with `to_bits`, not epsilon. The u8
//!    payload dequantizes to within half a quantization step.
//! 2. **Prefix consistency under racing ingest**: while a writer POSTs
//!    point batches, every concurrently served tile equals the direct
//!    computation over *some* prefix of the batch sequence, never a
//!    torn mixture — and never a prefix older than what the writer had
//!    already seen acknowledged.
//! 3. **503 iff the queue is full**: with the single worker parked on
//!    a gated compute and the connection queue filled to capacity, the
//!    next connection is refused with `503` + `Retry-After`; once the
//!    gate opens every queued request completes exactly; an idle
//!    server never emits `503`.

use lsga::core::par::Threads;
use lsga::http::{client, HttpServer, HttpServerConfig};
use lsga::prelude::*;
use lsga::serve::{compute_tile_direct, TileServer, TileServerConfig};
use std::io::Write;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TILE_PX: usize = 8;
const MAX_ZOOM: u8 = 3;
const TAIL_EPS: f64 = 1e-6;
const TIMEOUT: Duration = Duration::from_secs(10);

fn window() -> BBox {
    BBox::new(0.0, 0.0, 100.0, 100.0)
}

fn kernel() -> AnyKernel {
    KernelKind::Quartic.with_bandwidth(18.0)
}

/// Deterministic scatter inside the window.
fn scatter(n: usize, salt: u64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let f = (i as f64) + (salt as f64) * 0.618;
            Point::new(
                50.0 + (f * 0.831).sin() * 49.0,
                50.0 + (f * 0.557).cos() * 49.0,
            )
        })
        .collect()
}

/// A tile server with one layer over `points`, fronted by HTTP.
fn serve(points: Vec<Point>, http_cfg: HttpServerConfig) -> (HttpServer, usize) {
    let tiles = Arc::new(TileServer::new(TileServerConfig {
        tile_px: TILE_PX,
        max_zoom: MAX_ZOOM,
        shards: 2,
        threads: Threads::exact(2),
        ..TileServerConfig::default()
    }));
    let layer = tiles
        .add_layer(points, window(), kernel(), TAIL_EPS)
        .expect("layer");
    let server = HttpServer::start(tiles, http_cfg).expect("bind");
    (server, layer)
}

fn direct_bits(points: &[Point], c: TileCoord) -> Vec<u64> {
    compute_tile_direct(points, &window(), kernel(), TAIL_EPS, TILE_PX, c)
        .values()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

fn get_tile_bits(addr: SocketAddr, layer: usize, c: TileCoord) -> Vec<u64> {
    let target = format!("/tiles/{layer}/{}/{}/{}", c.z, c.x, c.y);
    let resp = client::get(addr, &target, &[], TIMEOUT).expect("GET tile");
    assert_eq!(
        resp.status,
        200,
        "{target}: {:?}",
        String::from_utf8_lossy(&resp.body)
    );
    assert_eq!(resp.header("x-lsga-tier"), Some("exact"));
    assert_eq!(resp.header("content-type"), Some("application/x-lsga-f64"));
    resp.decode_f64().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn served_f64_bytes_are_bit_identical_to_direct_compute() {
    let points = scatter(400, 3);
    let (server, layer) = serve(points.clone(), HttpServerConfig::default());
    let addr = server.local_addr();

    let mut coords = vec![TileCoord::new(0, 0, 0)];
    for z in 1..=MAX_ZOOM {
        let n = 1u32 << z;
        coords.push(TileCoord::new(z, 0, 0));
        coords.push(TileCoord::new(z, n - 1, n - 1));
        coords.push(TileCoord::new(z, n / 2, n - 1));
    }
    for c in coords {
        // Twice per coordinate: the second GET is a cache hit and must
        // serve the same bits.
        let first = get_tile_bits(addr, layer, c);
        assert_eq!(first, direct_bits(&points, c), "tile {c:?}");
        let second = get_tile_bits(addr, layer, c);
        assert_eq!(first, second, "cache hit diverged for {c:?}");
    }
    server.shutdown();
}

#[test]
fn u8_payload_dequantizes_within_half_step_of_direct() {
    let points = scatter(300, 9);
    let (server, layer) = serve(points.clone(), HttpServerConfig::default());
    let addr = server.local_addr();
    let c = TileCoord::new(1, 1, 0);
    let direct = compute_tile_direct(&points, &window(), kernel(), TAIL_EPS, TILE_PX, c);

    // Once via ?fmt=, once via Accept — the two negotiation paths must
    // agree byte-for-byte.
    let via_query =
        client::get(addr, &format!("/tiles/{layer}/1/1/0?fmt=u8"), &[], TIMEOUT).expect("GET u8");
    let via_accept = client::get(
        addr,
        &format!("/tiles/{layer}/1/1/0"),
        &[("Accept", "application/x-lsga-u8")],
        TIMEOUT,
    )
    .expect("GET u8 via accept");
    for resp in [&via_query, &via_accept] {
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/x-lsga-u8"));
        assert_eq!(resp.body.len(), TILE_PX * TILE_PX);
    }
    assert_eq!(via_query.body, via_accept.body);

    let decoded = via_query.decode_u8().expect("range headers");
    let min: f64 = via_query.header("x-lsga-min").unwrap().parse().unwrap();
    let max: f64 = via_query.header("x-lsga-max").unwrap().parse().unwrap();
    assert!(max >= min);
    let half_step = (max - min) / 255.0 / 2.0;
    for (i, (&got, &want)) in decoded.iter().zip(direct.values()).enumerate() {
        assert!(
            (got - want).abs() <= half_step + 1e-12,
            "pixel {i}: dequantized {got} vs direct {want} (half step {half_step})"
        );
    }
    server.shutdown();
}

#[test]
fn keep_alive_and_pipelined_requests_serve_in_order() {
    let points = scatter(200, 5);
    let (server, layer) = serve(points.clone(), HttpServerConfig::default());
    let addr = server.local_addr();
    let a = TileCoord::new(1, 0, 0);
    let b = TileCoord::new(1, 1, 1);

    // Two requests written back-to-back before reading anything: the
    // server must answer both, in order, on the same connection.
    let mut conn = client::connect(addr, TIMEOUT).expect("connect");
    let req = |c: &TileCoord| {
        format!(
            "GET /tiles/{layer}/{}/{}/{} HTTP/1.1\r\nHost: lsga\r\n\r\n",
            c.z, c.x, c.y
        )
    };
    let pipelined = format!("{}{}", req(&a), req(&b));
    conn.write_all(pipelined.as_bytes()).expect("write");
    let first = client::read_response(&mut conn).expect("first response");
    let second = client::read_response(&mut conn).expect("second response");
    for (resp, c) in [(&first, &a), (&second, &b)] {
        assert_eq!(resp.status, 200);
        let bits: Vec<u64> = resp.decode_f64().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, direct_bits(&points, *c), "pipelined tile {c:?}");
    }

    // Sequential keep-alive on the same connection still works after
    // the pipelined pair.
    for c in [a, b, TileCoord::new(0, 0, 0)] {
        conn.write_all(req(&c).as_bytes()).expect("write");
        let resp = client::read_response(&mut conn).expect("keep-alive response");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("connection"), Some("keep-alive"));
    }
    server.shutdown();
}

#[test]
fn racing_ingest_is_prefix_consistent_over_the_wire() {
    const BATCH: usize = 12;
    const BATCHES: usize = 6;
    let base = scatter(150, 7);
    let batches: Vec<Vec<Point>> = (0..BATCHES)
        .map(|b| scatter(BATCH, 100 + b as u64))
        .collect();

    // Oracle: the direct tile bits for every prefix of the sequence.
    let c = TileCoord::new(0, 0, 0);
    let mut prefix_bits = Vec::new();
    let mut acc = base.clone();
    prefix_bits.push(direct_bits(&acc, c));
    for b in &batches {
        acc.extend_from_slice(b);
        prefix_bits.push(direct_bits(&acc, c));
    }

    let (server, layer) = serve(base, HttpServerConfig::default());
    let addr = server.local_addr();
    let acked = Arc::new(AtomicUsize::new(0));
    let writer = {
        let acked = Arc::clone(&acked);
        let batches = batches.clone();
        std::thread::spawn(move || {
            for b in &batches {
                let resp = client::post(
                    addr,
                    &format!("/layers/{layer}/points"),
                    &client::encode_points(b),
                    TIMEOUT,
                )
                .expect("POST points");
                assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                acked.fetch_add(1, Ordering::SeqCst);
            }
        })
    };

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut seen_max = 0usize;
    while acked.load(Ordering::SeqCst) < BATCHES && Instant::now() < deadline {
        let before = acked.load(Ordering::SeqCst);
        let bits = get_tile_bits(addr, layer, c);
        let k = prefix_bits
            .iter()
            .position(|p| *p == bits)
            .unwrap_or_else(|| panic!("served tile matches no batch prefix (acked {before})"));
        assert!(
            k >= before,
            "served prefix {k} is older than the {before} already-acked batches"
        );
        seen_max = seen_max.max(k);
    }
    writer.join().expect("writer");

    // Quiesced: the final tile is exactly the full sequence.
    assert_eq!(get_tile_bits(addr, layer, c), prefix_bits[BATCHES]);
    assert!(seen_max <= BATCHES);
    server.shutdown();
}

#[test]
fn rejects_with_503_iff_the_queue_is_full() {
    let points = scatter(100, 11);
    let (server, layer) = serve(
        points,
        HttpServerConfig {
            workers: 1,
            queue_cap: 2,
            ..HttpServerConfig::default()
        },
    );
    let addr = server.local_addr();
    let target = format!("/tiles/{layer}/1/0/0");

    // Idle server: no 503, ever.
    for _ in 0..4 {
        let resp = client::get(addr, &target, &[], TIMEOUT).expect("idle GET");
        assert_eq!(resp.status, 200);
    }
    server.tiles().clear_cache();

    // Park the single worker: the compute hook spins until the gate
    // opens, so the first GET occupies the worker indefinitely.
    let gate = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(AtomicBool::new(false));
    {
        let gate = Arc::clone(&gate);
        let entered = Arc::clone(&entered);
        server.tiles().set_compute_hook(Some(Arc::new(move |_key| {
            entered.store(true, Ordering::SeqCst);
            while !gate.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        })));
    }

    let mut leader = client::connect(addr, TIMEOUT).expect("leader connect");
    leader
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: lsga\r\n\r\n").as_bytes())
        .expect("leader write");
    let spin_deadline = Instant::now() + TIMEOUT;
    while !entered.load(Ordering::SeqCst) {
        assert!(
            Instant::now() < spin_deadline,
            "worker never reached compute"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // Fill the worker's queue to capacity with pending connections.
    let mut queued = Vec::new();
    for _ in 0..2 {
        let mut conn = client::connect(addr, TIMEOUT).expect("queued connect");
        conn.write_all(format!("GET {target} HTTP/1.1\r\nHost: lsga\r\n\r\n").as_bytes())
            .expect("queued write");
        queued.push(conn);
    }
    let spin_deadline = Instant::now() + TIMEOUT;
    while server.queue_depths().iter().sum::<usize>() < 2 {
        assert!(Instant::now() < spin_deadline, "queue never filled");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Now the system is saturated: the next connection must be
    // refused, and the backoff hint must be derived from the live
    // admission estimate, not hardcoded. With the leader parked inside
    // its compute (inflight = 1) and the estimate pinned at 3.5 s, the
    // serialized-queue wait is (1 + 1) · 3.5 s, rounded up → 7.
    server
        .tiles()
        .set_compute_estimate(Duration::from_millis(3500));
    let resp = client::get(addr, &target, &[], TIMEOUT).expect("overflow GET");
    assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(resp.header("retry-after"), Some("7"));
    assert_eq!(resp.header("connection"), Some("close"));
    server.tiles().set_compute_estimate(Duration::ZERO);

    // Open the gate: the leader and every queued request complete with
    // full-quality answers.
    gate.store(true, Ordering::SeqCst);
    let first = client::read_response(&mut leader).expect("leader response");
    assert_eq!(first.status, 200);
    for mut conn in queued {
        let resp = client::read_response(&mut conn).expect("queued response");
        assert_eq!(resp.status, 200);
    }
    server.tiles().set_compute_hook(None);

    // Back under capacity: no more 503s.
    let resp = client::get(addr, &target, &[], TIMEOUT).expect("recovered GET");
    assert_eq!(resp.status, 200);
    server.shutdown();
}

#[test]
fn deadline_requests_flow_through_the_admission_controller() {
    let points = scatter(250, 13);
    let (server, layer) = serve(points.clone(), HttpServerConfig::default());
    let addr = server.local_addr();

    // A huge compute estimate forces the EWMA controller to degrade
    // any request with a tight deadline.
    server
        .tiles()
        .set_compute_estimate(Duration::from_millis(250));
    let resp = client::get(
        addr,
        &format!("/tiles/{layer}/1/0/0?deadline_ms=1&eps=0.2&seed=5"),
        &[],
        TIMEOUT,
    )
    .expect("degraded GET");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-lsga-tier"), Some("sampled"));
    let vals = resp.decode_f64();
    assert_eq!(vals.len(), TILE_PX * TILE_PX);
    assert!(vals.iter().all(|v| v.is_finite()));

    // Same deadline via header, bounds mode.
    server.tiles().clear_cache();
    let resp = client::get(
        addr,
        &format!("/tiles/{layer}/1/1/0?deadline_ms=1&mode=bounds&eps=0.3"),
        &[],
        TIMEOUT,
    )
    .expect("bounds GET");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-lsga-tier"), Some("bounds"));

    // Clearing the estimate restores exact service under a deadline —
    // and the bits are again direct-compute identical.
    server.tiles().set_compute_estimate(Duration::ZERO);
    server.tiles().clear_cache();
    let c = TileCoord::new(1, 0, 1);
    let resp = client::get(
        addr,
        &format!("/tiles/{layer}/1/0/1?deadline_ms=60000"),
        &[],
        TIMEOUT,
    )
    .expect("relaxed GET");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-lsga-tier"), Some("exact"));
    let bits: Vec<u64> = resp.decode_f64().iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits, direct_bits(&points, c));
    server.shutdown();
}
