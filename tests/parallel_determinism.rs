//! Cross-crate determinism suite for the scoped-thread work-stealing
//! pool (`lsga_core::par`).
//!
//! Every parallelized tool in the workspace promises *bit-identical*
//! output for every thread count: fixed chunk decomposition, one writer
//! per output slot, and ordered folds of per-chunk partials. This suite
//! enforces the promise end to end by running each converted tool at
//! thread counts {1, 2, 3, 8, 64} — 64 deliberately exceeds the number
//! of work items in most cases below, exercising the workers-without-
//! work path — and asserting exact equality against the 1-thread run.

use lsga::core::par::Threads;
use lsga::core::{BBox, Epanechnikov, Gaussian, GridSpec, KernelKind, Point, PolyKernel};
use lsga::interp::{VariogramModel, VariogramModelKind};
use lsga::kfunc::KConfig;
use lsga::stats::SpatialWeights;
use lsga::{data, interp, kdv, kfunc, stats};

/// The sweep: sequential baseline, small counts, the chunk-boundary
/// count 3, a typical core count, and one far beyond the work items.
const THREAD_COUNTS: [usize; 5] = [1, 2, 3, 8, 64];

fn window() -> BBox {
    BBox::new(0.0, 0.0, 100.0, 100.0)
}

fn points(n: usize, seed: u64) -> Vec<Point> {
    data::uniform_points(n, window(), seed)
}

/// Run `f` at every thread count and assert all results equal the
/// 1-thread baseline.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(what: &str, f: impl Fn(Threads) -> T) {
    let baseline = f(Threads::exact(1));
    for t in THREAD_COUNTS {
        let got = f(Threads::exact(t));
        assert!(got == baseline, "{what}: {t} threads diverged from 1");
    }
}

#[test]
fn kdv_parallel_grid() {
    let pts = points(800, 1);
    let spec = GridSpec::new(window(), 40, 25);
    assert_thread_invariant("parallel_kdv", |t| {
        kdv::parallel_kdv_threads(&pts, spec, Epanechnikov::new(9.0), 1e-9, t)
    });
}

#[test]
fn kdv_binned_gaussian() {
    let pts = points(500, 2);
    let spec = GridSpec::new(window(), 24, 24);
    assert_thread_invariant("binned_gaussian_kdv", |t| {
        kdv::binned_gaussian_kdv_threads(&pts, spec, Gaussian::new(7.0), 4, 1e-9, t)
    });
}

#[test]
fn kdv_spatiotemporal_sweep() {
    let pts = data::uniform_timed_points(400, window(), 0.0, 50.0, 3);
    let spec = GridSpec::new(window(), 12, 12);
    let kt = PolyKernel::new(KernelKind::Quartic, 8.0).unwrap();
    assert_thread_invariant("stkdv_sweep", |t| {
        kdv::stkdv_sweep_threads(
            &pts,
            spec,
            0.0,
            50.0,
            10,
            Epanechnikov::new(12.0),
            kt,
            1e-9,
            t,
        )
    });
}

#[test]
fn kfunc_single_threshold() {
    let pts = points(900, 4);
    for cfg in [
        KConfig {
            include_self: false,
        },
        KConfig { include_self: true },
    ] {
        assert_thread_invariant("parallel_k", |t| {
            kfunc::parallel_k_threads(&pts, 8.0, cfg, t)
        });
    }
}

#[test]
fn kfunc_histogram_all_thresholds() {
    let pts = points(600, 5);
    let ts = [15.0, 0.5, 3.0, 7.0, 40.0]; // deliberately unsorted
    assert_thread_invariant("histogram_k_all", |t| {
        kfunc::histogram_k_all_threads(&pts, &ts, KConfig::default(), t)
    });
}

#[test]
fn kfunc_sampled_and_border_corrected() {
    let pts = points(700, 6);
    let ts = [5.0, 12.0, 25.0];
    assert_thread_invariant("sampled_k", |t| {
        kfunc::sampled_k_threads(&pts, &ts, 200, 11, KConfig::default(), t)
    });
    assert_thread_invariant("border_corrected_k", |t| {
        let ks = kfunc::border_corrected_k_threads(&pts, window(), &ts, t);
        // NaN-free here, so bitwise comparison through PartialEq is sound.
        ks.iter()
            .map(|(k, n)| (k.to_bits(), *n))
            .collect::<Vec<_>>()
    });
}

#[test]
fn kfunc_cross_type() {
    let a = points(400, 7);
    let b = points(350, 8);
    let ts = [2.0, 6.0, 18.0];
    assert_thread_invariant("cross_k", |t| kfunc::cross_k_threads(&a, &b, &ts, t));
    assert_thread_invariant("cross_k_plot", |t| {
        kfunc::cross_k_plot_threads(&a, &b, &ts, 6, 9, KConfig::default(), t)
    });
}

#[test]
fn kfunc_spatiotemporal_surface() {
    let pts = data::uniform_timed_points(300, window(), 0.0, 40.0, 10);
    let ss = [4.0, 10.0];
    let ts = [3.0, 12.0];
    assert_thread_invariant("st_k_grid", |t| {
        kfunc::st_k_grid_threads(&pts, &ss, &ts, KConfig::default(), t)
    });
    assert_thread_invariant("st_k_plot", |t| {
        kfunc::st_k_plot_threads(
            &pts,
            window(),
            0.0,
            40.0,
            &ss,
            &ts,
            5,
            13,
            KConfig::default(),
            t,
        )
    });
}

#[test]
fn kfunc_plot_existing_thread_knob() {
    let pts = points(200, 14);
    let ts: Vec<f64> = (1..=6).map(|i| i as f64 * 2.0).collect();
    let baseline = kfunc::k_function_plot(&pts, window(), &ts, 7, 21, KConfig::default(), 1);
    for t in THREAD_COUNTS {
        let got = kfunc::k_function_plot(&pts, window(), &ts, 7, 21, KConfig::default(), t);
        assert_eq!(got, baseline, "k_function_plot: {t} threads");
    }
}

fn lattice_weights(k: usize) -> SpatialWeights {
    let pts: Vec<Point> = (0..k * k)
        .map(|i| Point::new((i % k) as f64, (i / k) as f64))
        .collect();
    SpatialWeights::distance_band(&pts, 1.0)
}

#[test]
fn stats_global_statistics() {
    let k = 9;
    let w = lattice_weights(k);
    let values: Vec<f64> = (0..k * k).map(|i| ((i * 7) % 13) as f64).collect();
    assert_thread_invariant("morans_i", |t| {
        stats::morans_i_threads(&values, &w, 199, 5, t).unwrap()
    });
    assert_thread_invariant("general_g", |t| {
        stats::general_g_threads(&values, &w, 199, 5, t).unwrap()
    });
    // Fewer permutations than any parallel split can fill 64 threads.
    assert_thread_invariant("morans_i (tiny)", |t| {
        stats::morans_i_threads(&values, &w, 3, 1, t).unwrap()
    });
}

#[test]
fn stats_local_statistics() {
    let k = 8;
    let w = lattice_weights(k);
    let values: Vec<f64> = (0..k * k).map(|i| ((i * 11) % 17) as f64).collect();
    assert_thread_invariant("local_gi_star", |t| {
        stats::local_gi_star_threads(&values, &w, t)
    });
    assert_thread_invariant("local_morans_i", |t| {
        stats::local_morans_i_threads(&values, &w, 99, 23, t).unwrap()
    });
}

#[test]
fn stats_clustering() {
    let pts = data::gaussian_mixture(
        600,
        &[
            lsga::prelude::Hotspot {
                center: Point::new(30.0, 30.0),
                sigma: 4.0,
                weight: 1.0,
            },
            lsga::prelude::Hotspot {
                center: Point::new(70.0, 65.0),
                sigma: 4.0,
                weight: 1.0,
            },
        ],
        window(),
        31,
    );
    assert_thread_invariant("dbscan", |t| stats::dbscan_threads(&pts, 3.0, 5, t));
    assert_thread_invariant("kmeans", |t| stats::kmeans_threads(&pts, 2, 40, 17, t));
}

fn samples() -> Vec<(Point, f64)> {
    points(120, 40)
        .into_iter()
        .map(|p| (p, 3.0 + 0.08 * p.x - 0.05 * p.y))
        .collect()
}

#[test]
fn interp_idw_all_variants() {
    let s = samples();
    let spec = GridSpec::new(window(), 18, 15);
    assert_thread_invariant("idw_naive", |t| interp::idw_naive_threads(&s, spec, 2.0, t));
    assert_thread_invariant("idw_knn", |t| interp::idw_knn_threads(&s, spec, 2.0, 8, t));
    assert_thread_invariant("idw_radius", |t| {
        interp::idw_radius_threads(&s, spec, 2.0, 15.0, t)
    });
}

#[test]
fn interp_kriging() {
    let s = samples();
    let spec = GridSpec::new(window(), 10, 10);
    let model = VariogramModel {
        kind: VariogramModelKind::Spherical,
        nugget: 0.1,
        psill: 8.0,
        range: 25.0,
    };
    assert_thread_invariant("ordinary_kriging", |t| {
        interp::ordinary_kriging_threads(&s, spec, &model, 10, t).unwrap()
    });
}

#[test]
fn more_threads_than_rows() {
    // A 3-row grid on 64 threads: most workers must find the claim
    // counter exhausted and exit without touching the output.
    let pts = points(150, 50);
    let spec = GridSpec::new(window(), 16, 3);
    assert_thread_invariant("parallel_kdv (3 rows)", |t| {
        kdv::parallel_kdv_threads(&pts, spec, Epanechnikov::new(10.0), 1e-9, t)
    });
}
