//! Wire-level conformance suite for `lsga-http`.
//!
//! The contract under test: **any** byte sequence arriving on the
//! socket produces a well-formed HTTP response with the documented
//! status — never a panic, never a hang, never a connection that the
//! server silently wedges. Three layers of evidence:
//!
//! - a **directed matrix** of malformed inputs, one per parse/route
//!   error branch, each pinned to its expected 4xx status over a real
//!   socket (the in-process halves of these branches are unit-tested
//!   next to the code; here the same inputs travel the wire);
//! - **proptest byte-mangling**: valid requests are truncated, bit
//!   flipped, stuffed with junk, and doubled, then fired at a live
//!   server; the only legal outcomes are a `2xx..5xx` response or a
//!   clean close within the server's read-timeout budget;
//! - **lifecycle tests**: graceful shutdown completes the in-flight
//!   request, sheds queued connections with `503`, joins every thread
//!   the server spawned (verified against `/proc/self/task` by thread
//!   name prefix), and releases the listening port.

use lsga::core::par::Threads;
use lsga::http::{client, HttpServer, HttpServerConfig};
use lsga::obs::{self, Counter};
use lsga::prelude::*;
use lsga::serve::{TileServer, TileServerConfig};
use proptest::prelude::*;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

const TILE_PX: usize = 8;
const MAX_ZOOM: u8 = 2;
const TAIL_EPS: f64 = 1e-6;
const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

fn window() -> BBox {
    BBox::new(0.0, 0.0, 100.0, 100.0)
}

fn points(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let f = i as f64;
            Point::new(
                50.0 + (f * 0.831).sin() * 49.0,
                50.0 + (f * 0.557).cos() * 49.0,
            )
        })
        .collect()
}

fn start_server(cfg: HttpServerConfig) -> HttpServer {
    let tiles = Arc::new(TileServer::new(TileServerConfig {
        tile_px: TILE_PX,
        max_zoom: MAX_ZOOM,
        shards: 2,
        threads: Threads::exact(2),
        ..TileServerConfig::default()
    }));
    tiles
        .add_layer(
            points(60),
            window(),
            KernelKind::Quartic.with_bandwidth(20.0),
            TAIL_EPS,
        )
        .expect("layer");
    HttpServer::start(tiles, cfg).expect("bind")
}

/// One shared server for the stateless directed cases (cheaper than a
/// server per case; each case uses its own connection).
fn shared_server() -> &'static HttpServer {
    static SERVER: OnceLock<HttpServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        start_server(HttpServerConfig {
            read_timeout: Duration::from_millis(300),
            max_body_bytes: 4096,
            ..HttpServerConfig::default()
        })
    })
}

#[test]
fn directed_malformed_requests_yield_their_documented_4xx() {
    let addr = shared_server().local_addr();
    let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(5000));
    let mut many_headers = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..70 {
        many_headers.push_str(&format!("x-h{i}: v\r\n"));
    }
    many_headers.push_str("\r\n");
    let huge_head = format!(
        "GET /healthz HTTP/1.1\r\nx-pad: {}\r\n\r\n",
        "b".repeat(9000)
    );

    let cases: Vec<(&str, String, u16)> = vec![
        ("empty request line", "\r\n\r\n".into(), 400),
        ("one-token request line", "GARBAGE\r\n\r\n".into(), 400),
        (
            "four-token request line",
            "GET /healthz HTTP/1.1 extra\r\n\r\n".into(),
            400,
        ),
        (
            "unknown method",
            "BREW /healthz HTTP/1.1\r\n\r\n".into(),
            405,
        ),
        (
            "unsupported protocol",
            "GET /healthz HTCPCP/1.0\r\n\r\n".into(),
            400,
        ),
        (
            "non-origin-form target",
            "GET healthz HTTP/1.1\r\n\r\n".into(),
            400,
        ),
        (
            "header without colon",
            "GET /healthz HTTP/1.1\r\nNoColonHere\r\n\r\n".into(),
            400,
        ),
        (
            "header name with space",
            "GET /healthz HTTP/1.1\r\nBad Name: v\r\n\r\n".into(),
            400,
        ),
        ("unknown path", "GET /nope HTTP/1.1\r\n\r\n".into(), 404),
        (
            "short tile path",
            "GET /tiles/0/1/0 HTTP/1.1\r\n\r\n".into(),
            404,
        ),
        (
            "non-numeric z",
            "GET /tiles/0/zoom/0/0 HTTP/1.1\r\n\r\n".into(),
            400,
        ),
        (
            "negative x",
            "GET /tiles/0/1/-1/0 HTTP/1.1\r\n\r\n".into(),
            400,
        ),
        (
            "zoom past the pyramid",
            format!("GET /tiles/0/{}/0/0 HTTP/1.1\r\n\r\n", MAX_ZOOM + 1),
            404,
        ),
        (
            "column outside the level",
            "GET /tiles/0/1/2/0 HTTP/1.1\r\n\r\n".into(),
            404,
        ),
        (
            "unknown layer",
            "GET /tiles/9/0/0/0 HTTP/1.1\r\n\r\n".into(),
            404,
        ),
        (
            "unknown query key",
            "GET /tiles/0/0/0/0?zoom=1 HTTP/1.1\r\n\r\n".into(),
            400,
        ),
        (
            "duplicate query key",
            "GET /tiles/0/0/0/0?fmt=f64&fmt=f64 HTTP/1.1\r\n\r\n".into(),
            400,
        ),
        (
            "approximation knob without deadline",
            "GET /tiles/0/0/0/0?eps=0.1 HTTP/1.1\r\n\r\n".into(),
            400,
        ),
        (
            "non-numeric deadline",
            "GET /tiles/0/0/0/0?deadline_ms=soon HTTP/1.1\r\n\r\n".into(),
            400,
        ),
        (
            "illegal eps for the policy",
            "GET /tiles/0/0/0/0?deadline_ms=5&eps=-1 HTTP/1.1\r\n\r\n".into(),
            400,
        ),
        (
            "unacceptable accept",
            "GET /tiles/0/0/0/0 HTTP/1.1\r\nAccept: image/png\r\n\r\n".into(),
            406,
        ),
        (
            "method not allowed on tiles",
            "POST /tiles/0/0/0/0 HTTP/1.1\r\nContent-Length: 0\r\n\r\n".into(),
            405,
        ),
        (
            "method not allowed on points",
            "GET /layers/0/points HTTP/1.1\r\n\r\n".into(),
            405,
        ),
        ("request line too long", long_line, 414),
        ("too many header fields", many_headers, 431),
        ("head past the byte cap", huge_head, 431),
    ];

    for (what, raw, expected) in cases {
        let resp = client::send(addr, raw.as_bytes(), CLIENT_TIMEOUT)
            .unwrap_or_else(|e| panic!("{what}: no response ({e})"));
        assert_eq!(
            resp.status,
            expected,
            "{what}: got {} — body {:?}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        );
        // Every error closes the connection so a poisoned byte stream
        // can never smear into a next request.
        assert_eq!(resp.header("connection"), Some("close"), "{what}");
        assert!(!resp.body.is_empty(), "{what}: error body must say why");
    }
}

#[test]
fn truncated_and_stalled_heads_get_400_and_408() {
    let addr = shared_server().local_addr();

    // Half-close after a partial head: EOF mid-request is a 400.
    let mut conn = client::connect(addr, CLIENT_TIMEOUT).expect("connect");
    conn.write_all(b"GET /tiles/0/0").expect("partial write");
    conn.shutdown(Shutdown::Write).expect("half-close");
    let resp = client::read_response(&mut conn).expect("response to truncated head");
    assert_eq!(resp.status, 400);

    // Stalling mid-head past the server's read timeout is a 408.
    let mut conn = client::connect(addr, CLIENT_TIMEOUT).expect("connect");
    conn.write_all(b"GET /tiles/0/0").expect("partial write");
    let t0 = Instant::now();
    let resp = client::read_response(&mut conn).expect("response to stalled head");
    assert_eq!(resp.status, 408);
    assert!(
        t0.elapsed() >= Duration::from_millis(250),
        "408 must wait out the read timeout, got it after {:?}",
        t0.elapsed()
    );

    // Connecting and saying nothing at all: the server just closes.
    let mut conn = client::connect(addr, CLIENT_TIMEOUT).expect("connect");
    let err = client::read_response(&mut conn).expect_err("silent connection closes quietly");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}

#[test]
fn post_body_framing_is_strictly_validated() {
    let addr = shared_server().local_addr();

    // No Content-Length: 411.
    let resp = client::send(
        addr,
        b"POST /layers/0/points HTTP/1.1\r\nHost: lsga\r\n\r\n",
        CLIENT_TIMEOUT,
    )
    .expect("411 response");
    assert_eq!(resp.status, 411);

    // Non-numeric Content-Length: 400.
    let resp = client::send(
        addr,
        b"POST /layers/0/points HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
        CLIENT_TIMEOUT,
    )
    .expect("400 response");
    assert_eq!(resp.status, 400);

    // Not a multiple of the 16-byte point stride: 400, body unread.
    let resp = client::send(
        addr,
        b"POST /layers/0/points HTTP/1.1\r\nContent-Length: 15\r\n\r\n0123456789abcde",
        CLIENT_TIMEOUT,
    )
    .expect("400 response");
    assert_eq!(resp.status, 400);

    // Declared length past the cap (4096 here): 413 without reading.
    let resp = client::send(
        addr,
        b"POST /layers/0/points HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n",
        CLIENT_TIMEOUT,
    )
    .expect("413 response");
    assert_eq!(resp.status, 413);

    // Unknown layer with a well-formed body: 404.
    let body = client::encode_points(&[Point::new(50.0, 50.0)]);
    let resp = client::post(addr, "/layers/9/points", &body, CLIENT_TIMEOUT).expect("404");
    assert_eq!(resp.status, 404);

    // And the happy path, to prove the validations above are the only
    // gate: a correct POST appends and reports the count.
    let resp = client::post(addr, "/layers/0/points", &body, CLIENT_TIMEOUT).expect("200");
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(resp.header("x-lsga-points"), Some("1"));
}

#[test]
fn pipelined_garbage_after_a_valid_request_answers_then_closes() {
    let addr = shared_server().local_addr();
    let mut conn = client::connect(addr, CLIENT_TIMEOUT).expect("connect");
    let mut bytes = b"GET /tiles/0/0/0/0 HTTP/1.1\r\nHost: lsga\r\n\r\n".to_vec();
    bytes.extend_from_slice(b"\x00\x01\xffnot http at all\r\n\r\n");
    conn.write_all(&bytes).expect("write");

    let first = client::read_response(&mut conn).expect("valid request served");
    assert_eq!(first.status, 200);
    assert_eq!(first.body.len(), TILE_PX * TILE_PX * 8);
    let second = client::read_response(&mut conn).expect("garbage answered");
    assert_eq!(second.status, 400);
    assert_eq!(second.header("connection"), Some("close"));
    // After the error the server hangs up.
    let end = client::read_response(&mut conn).expect_err("closed after error");
    assert_eq!(end.kind(), std::io::ErrorKind::UnexpectedEof);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Byte-mangling fuzz: start from a valid request, apply a random
    /// mutation, fire it at a live server. The server must answer with
    /// some status or close the connection — within the client timeout,
    /// which is generous against the server's 300 ms read timeout — and
    /// must never hang or crash. (A panic in a worker would surface as
    /// every later case timing out.)
    fn mangled_requests_never_hang_the_server(
        corpus in 0usize..4,
        op in 0usize..4,
        pos in 0usize..120,
        val32 in 0u32..256,
        extra32 in prop::collection::vec(0u32..256, 0..24),
    ) {
        let val = val32 as u8;
        let extra: Vec<u8> = extra32.iter().map(|&b| b as u8).collect();
        let addr = shared_server().local_addr();
        let base: Vec<u8> = match corpus {
            0 => b"GET /tiles/0/1/1/0?fmt=u8 HTTP/1.1\r\nHost: lsga\r\n\r\n".to_vec(),
            1 => b"GET /tiles/0/0/0/0?deadline_ms=50 HTTP/1.1\r\nAccept: */*\r\n\r\n".to_vec(),
            2 => {
                let body = client::encode_points(&[Point::new(10.0, 10.0)]);
                let mut req = format!(
                    "POST /layers/0/points HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                ).into_bytes();
                req.extend_from_slice(&body);
                req
            }
            _ => b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
        };
        let mut bytes = base.clone();
        match op {
            // Flip one byte.
            0 => {
                let i = pos % bytes.len();
                bytes[i] = val;
            }
            // Truncate.
            1 => bytes.truncate(pos % (bytes.len() + 1)),
            // Insert junk.
            2 => {
                let i = pos % (bytes.len() + 1);
                bytes.splice(i..i, extra.iter().copied());
            }
            // Pipeline the request after itself, then mangle the tail.
            _ => {
                bytes.extend_from_slice(&base);
                let i = base.len() + pos % base.len();
                bytes[i] = val;
            }
        }

        let mut conn = client::connect(addr, CLIENT_TIMEOUT).expect("connect");
        // A write error just means the server already rejected us.
        let _ = conn.write_all(&bytes);
        let _ = conn.shutdown(Shutdown::Write);
        loop {
            match client::read_response(&mut conn) {
                Ok(resp) => {
                    prop_assert!(
                        (200..600).contains(&resp.status),
                        "nonsense status {}",
                        resp.status
                    );
                    if resp.header("connection") == Some("close") {
                        break;
                    }
                }
                Err(e) => {
                    prop_assert!(
                        !matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ),
                        "server hung on mangled input ({e})"
                    );
                    break;
                }
            }
        }
    }
}

/// Threads of this process whose name starts with `prefix`, via
/// `/proc/self/task`. `None` when the platform has no procfs.
fn threads_with_prefix(prefix: &str) -> Option<usize> {
    let dir = std::fs::read_dir("/proc/self/task").ok()?;
    Some(
        dir.filter_map(|e| {
            let comm = std::fs::read_to_string(e.ok()?.path().join("comm")).ok()?;
            comm.trim().starts_with(prefix).then_some(())
        })
        .count(),
    )
}

#[test]
fn graceful_shutdown_completes_inflight_sheds_queued_and_joins() {
    let server = start_server(HttpServerConfig {
        workers: 1,
        queue_cap: 4,
        read_timeout: Duration::from_millis(500),
        ..HttpServerConfig::default()
    });
    let addr = server.local_addr();
    let prefix = server.thread_prefix();
    let tiles = Arc::clone(server.tiles());
    // Names are set by each spawned thread itself, so give them a
    // moment to appear before counting.
    if threads_with_prefix(&prefix).is_some() {
        let spin = Instant::now() + CLIENT_TIMEOUT;
        while threads_with_prefix(&prefix) != Some(2) {
            assert!(
                Instant::now() < spin,
                "expected 1 acceptor + 1 worker running, saw {:?}",
                threads_with_prefix(&prefix)
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // Park the worker inside a compute so we control what "in flight"
    // means.
    let gate = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(AtomicBool::new(false));
    {
        let gate = Arc::clone(&gate);
        let entered = Arc::clone(&entered);
        tiles.set_compute_hook(Some(Arc::new(move |_key| {
            entered.store(true, Ordering::SeqCst);
            while !gate.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        })));
    }
    let mut inflight = client::connect(addr, CLIENT_TIMEOUT).expect("connect");
    inflight
        .write_all(b"GET /tiles/0/1/0/0 HTTP/1.1\r\nHost: lsga\r\n\r\n")
        .expect("write");
    let spin = Instant::now() + CLIENT_TIMEOUT;
    while !entered.load(Ordering::SeqCst) {
        assert!(Instant::now() < spin, "request never reached compute");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Two more connections sit in the worker's queue.
    let mut queued = Vec::new();
    for _ in 0..2 {
        let mut conn = client::connect(addr, CLIENT_TIMEOUT).expect("connect");
        conn.write_all(b"GET /tiles/0/1/1/0 HTTP/1.1\r\nHost: lsga\r\n\r\n")
            .expect("write");
        queued.push(conn);
    }
    let spin = Instant::now() + CLIENT_TIMEOUT;
    while server.queue_depths().iter().sum::<usize>() < 2 {
        assert!(Instant::now() < spin, "queue never filled");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Shut down while the worker is parked; release the gate shortly
    // after so the in-flight request can finish.
    let (tx, rx) = std::sync::mpsc::channel();
    let shutter = std::thread::spawn(move || {
        server.shutdown();
        let _ = tx.send(());
    });
    std::thread::sleep(Duration::from_millis(100));
    gate.store(true, Ordering::SeqCst);

    // In-flight request completes — with a close, since we're draining.
    let resp = client::read_response(&mut inflight).expect("in-flight response");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("connection"), Some("close"));
    // Queued connections are shed with 503. Retry-After is derived
    // from the live admission estimate (here a sub-second EWMA seeded
    // by the just-released compute), so assert the clamp envelope
    // rather than a hardcoded constant.
    for mut conn in queued {
        let resp = client::read_response(&mut conn).expect("queued response");
        assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
        let retry: u64 = resp
            .header("retry-after")
            .expect("shed 503 carries Retry-After")
            .parse()
            .expect("Retry-After is integral seconds");
        assert!(
            (1..=8).contains(&retry),
            "Retry-After {retry} outside 1..=8"
        );
    }

    // The whole teardown joins within the watchdog budget.
    rx.recv_timeout(Duration::from_secs(10))
        .expect("shutdown did not join within 10s");
    shutter.join().expect("shutter thread");
    tiles.set_compute_hook(None);

    // No leaked threads, and the port is released.
    if let Some(n) = threads_with_prefix(&prefix) {
        assert_eq!(n, 0, "server threads leaked past shutdown");
    }
    match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut conn) => {
            // Extremely unlikely (port reuse), but if something
            // accepted, it must not be our server still alive.
            let _ = conn.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            assert!(
                client::read_response(&mut conn).is_err(),
                "listener still serving after shutdown"
            );
        }
    }
}

/// Serializes the tests that enable the process-global obs registry.
static OBS_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn metrics_endpoint_drains_the_obs_tables_as_json() {
    let _guard = OBS_LOCK.lock().unwrap();
    obs::enable();
    obs::reset();
    // Dedicated server so the traffic below is the dominant signal
    // (other tests' servers also count while obs is enabled, so the
    // assertions are lower bounds, not exact).
    let server = start_server(HttpServerConfig::default());
    let addr = server.local_addr();

    for _ in 0..3 {
        let resp = client::get(addr, "/tiles/0/1/0/0", &[], CLIENT_TIMEOUT).expect("GET");
        assert_eq!(resp.status, 200);
    }
    let resp = client::get(addr, "/tiles/9/0/0/0", &[], CLIENT_TIMEOUT).expect("404 GET");
    assert_eq!(resp.status, 404);

    let resp = client::get(addr, "/metrics", &[], CLIENT_TIMEOUT).expect("metrics");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("application/json"));
    let body = String::from_utf8(resp.body.clone()).expect("json is utf-8");
    for needle in [
        "\"http.connections_accepted\"",
        "\"http.requests\"",
        "\"http.responses_2xx\"",
        "\"http.responses_4xx\"",
        "\"http.queue_depth\"",
    ] {
        assert!(
            body.contains(needle),
            "metrics JSON missing {needle}: {body}"
        );
    }
    let count_of = |name: &str| -> u64 {
        body.lines()
            .find(|l| l.contains(&format!("\"{name}\"")))
            .and_then(|l| l.rsplit(':').next())
            .and_then(|v| v.trim().trim_end_matches(',').parse().ok())
            .unwrap_or_else(|| panic!("counter {name} not parseable from {body}"))
    };
    assert!(count_of("http.requests") >= 5, "3 tiles + 1 miss + metrics");
    assert!(count_of("http.responses_2xx") >= 3);
    assert!(count_of("http.responses_4xx") >= 1);

    // Draining means a quiesced second scrape starts over near zero.
    let resp2 = client::get(addr, "/metrics", &[], CLIENT_TIMEOUT).expect("second scrape");
    assert_eq!(resp2.status, 200);
    let body2 = String::from_utf8(resp2.body).expect("utf-8");
    let requests_after: u64 = body2
        .lines()
        .find(|l| l.contains("\"http.requests\""))
        .and_then(|l| l.rsplit(':').next())
        .and_then(|v| v.trim().trim_end_matches(',').parse().ok())
        .unwrap_or(0);
    assert!(
        requests_after <= count_of("http.requests"),
        "drain did not reset the request counter"
    );
    obs::disable();
    obs::reset();
    server.shutdown();

    // Branch audit rider: the counter enum names the metrics suite
    // depends on exist and are distinct.
    let names: Vec<&str> = [
        Counter::HttpConnsAccepted,
        Counter::HttpRequests,
        Counter::HttpResponses2xx,
        Counter::HttpResponses4xx,
        Counter::HttpResponses5xx,
        Counter::HttpQueueRejections,
        Counter::HttpShedShutdown,
        Counter::HttpBytesOut,
    ]
    .iter()
    .map(|c| c.name())
    .collect();
    let mut unique = names.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), names.len(), "duplicate counter names");
}

// ---------------------------------------------------------------------------
// Kind-bearing tile routes: `GET /tiles/{layer}/{kind}/{z}/{x}/{y}[?t=bin]`.
// The kind segment is a *claim* about what the layer serves — matching
// claims return exactly the legacy route's bytes, mismatched or unknown
// claims are missing resources (404), and the `t` slider selects the
// time bin of an STKDV layer (out-of-range bins are bad parameters, 400,
// because the route exists — the argument is wrong).

/// One shared four-kind server: layer 0 KDV, 1 STKDV (4 bins over
/// t∈[0,40]), 2 NKDV on a 5×5 grid network, 3 Gi* hotspot overlay.
fn kinds_server() -> &'static HttpServer {
    static SERVER: OnceLock<HttpServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        use lsga::network::{self, Lixels};
        use lsga::serve::{HotspotCompute, HotspotStat, NkdvCompute, StkdvCompute};
        let tiles = Arc::new(TileServer::new(TileServerConfig {
            tile_px: TILE_PX,
            max_zoom: MAX_ZOOM,
            shards: 2,
            threads: Threads::exact(2),
            ..TileServerConfig::default()
        }));
        tiles
            .add_layer(
                points(60),
                window(),
                KernelKind::Quartic.with_bandwidth(20.0),
                TAIL_EPS,
            )
            .expect("kdv layer");
        let tpts: Vec<TimedPoint> = points(80)
            .into_iter()
            .enumerate()
            .map(|(i, p)| TimedPoint::new(p.x, p.y, 20.0 + ((i as f64) * 0.433).sin() * 19.9))
            .collect();
        tiles
            .add_compute_layer(Arc::new(
                StkdvCompute::new(
                    &tpts,
                    window(),
                    KernelKind::Epanechnikov.with_bandwidth(15.0),
                    PolyKernel::new(KernelKind::Quartic, 8.0).expect("temporal kernel"),
                    0.0,
                    40.0,
                    4,
                    TAIL_EPS,
                )
                .expect("stkdv compute"),
            ))
            .expect("stkdv layer");
        let net = Arc::new(network::grid_network(5, 5, 25.0));
        let lixels = Arc::new(Lixels::build(&net, 6.0));
        let events = network::sample_on_network(&net, 70, 19);
        tiles
            .add_compute_layer(Arc::new(
                NkdvCompute::new(
                    net,
                    lixels,
                    &events,
                    KernelKind::Quartic.with_bandwidth(18.0),
                )
                .expect("nkdv compute"),
            ))
            .expect("nkdv layer");
        tiles
            .add_compute_layer(Arc::new(
                HotspotCompute::new(&points(90), window(), 5, 25.0, HotspotStat::GiStar)
                    .expect("hotspot compute"),
            ))
            .expect("hotspot layer");
        HttpServer::start(
            tiles,
            HttpServerConfig {
                read_timeout: Duration::from_millis(300),
                ..HttpServerConfig::default()
            },
        )
        .expect("bind")
    })
}

#[test]
fn kind_routes_serve_the_legacy_routes_bytes() {
    let addr = kinds_server().local_addr();
    for (layer, kind) in [(0u32, "kdv"), (2, "nkdv"), (3, "hotspot")] {
        let legacy = client::get(addr, &format!("/tiles/{layer}/1/0/1"), &[], CLIENT_TIMEOUT)
            .expect("legacy GET");
        let kinded = client::get(
            addr,
            &format!("/tiles/{layer}/{kind}/1/0/1"),
            &[],
            CLIENT_TIMEOUT,
        )
        .expect("kinded GET");
        assert_eq!(legacy.status, 200, "{kind}: legacy route");
        assert_eq!(kinded.status, 200, "{kind}: kind route");
        assert_eq!(
            legacy.body, kinded.body,
            "{kind}: kind route bytes diverge from the legacy route"
        );
    }
    // The legacy route on a binned layer is exactly the bin-0 slice.
    let legacy = client::get(addr, "/tiles/1/1/0/1", &[], CLIENT_TIMEOUT).expect("legacy stkdv");
    let bin0 =
        client::get(addr, "/tiles/1/stkdv/1/0/1?t=0", &[], CLIENT_TIMEOUT).expect("stkdv t=0");
    assert_eq!(legacy.status, 200);
    assert_eq!(bin0.status, 200);
    assert_eq!(legacy.body, bin0.body, "legacy route must be the t=0 slice");
}

#[test]
fn stkdv_time_slider_selects_distinct_bins() {
    let addr = kinds_server().local_addr();
    let slices: Vec<Vec<f64>> = (0..4u32)
        .map(|bin| {
            let resp = client::get(
                addr,
                &format!("/tiles/1/stkdv/0/0/0?t={bin}"),
                &[],
                CLIENT_TIMEOUT,
            )
            .expect("slider GET");
            assert_eq!(resp.status, 200, "bin {bin}");
            resp.decode_f64()
        })
        .collect();
    // The temporal kernel genuinely discriminates: adjacent slices of a
    // root tile over spread-out timestamps cannot be bit-identical.
    for w in slices.windows(2) {
        assert_ne!(w[0], w[1], "adjacent time bins served identical slices");
    }
}

#[test]
fn kind_mismatch_and_unknown_kinds_are_404() {
    let addr = kinds_server().local_addr();
    let missing = [
        ("/tiles/0/stkdv/1/0/0", "KDV layer claimed as stkdv"),
        ("/tiles/1/kdv/1/0/0", "STKDV layer claimed as kdv"),
        ("/tiles/2/hotspot/1/0/0", "NKDV layer claimed as hotspot"),
        ("/tiles/3/nkdv/1/0/0", "hotspot layer claimed as nkdv"),
        ("/tiles/0/voronoi/1/0/0", "no such analytic"),
        ("/tiles/0/KDV/1/0/0", "kind names are case-sensitive"),
        ("/tiles/9/kdv/1/0/0", "kind route on an absent layer"),
    ];
    for (path, why) in missing {
        let resp = client::get(addr, path, &[], CLIENT_TIMEOUT).expect("GET");
        assert_eq!(resp.status, 404, "{why}: {path}");
    }
    let bad = [
        ("/tiles/1/stkdv/1/0/0?t=99", "bin beyond the layer's nt"),
        ("/tiles/0/kdv/1/0/0?t=1", "non-zero bin on a spatial layer"),
        ("/tiles/1/1/0/0?t=1", "t is not a legacy-route key"),
        ("/tiles/1/stkdv/1/0/0?t=-1", "negative bin"),
        (
            "/tiles/1/stkdv/1/0/0?t=2&deadline_ms=5&eps=0.2&delta=0.1&seed=1",
            "deadline policies are spatial-only",
        ),
    ];
    for (path, why) in bad {
        let resp = client::get(addr, path, &[], CLIENT_TIMEOUT).expect("GET");
        assert_eq!(resp.status, 400, "{why}: {path}");
    }
}

#[test]
fn u8_round_trips_within_a_step_for_every_kind() {
    let addr = kinds_server().local_addr();
    for (layer, kind, query) in [
        (0u32, "kdv", ""),
        (1, "stkdv", "?t=2"),
        (2, "nkdv", ""),
        (3, "hotspot", ""),
    ] {
        let sep = if query.is_empty() { "?" } else { "&" };
        let exact = client::get(
            addr,
            &format!("/tiles/{layer}/{kind}/1/1/0{query}"),
            &[],
            CLIENT_TIMEOUT,
        )
        .expect("f64 GET");
        let coarse = client::get(
            addr,
            &format!("/tiles/{layer}/{kind}/1/1/0{query}{sep}fmt=u8"),
            &[],
            CLIENT_TIMEOUT,
        )
        .expect("u8 GET");
        assert_eq!(exact.status, 200, "{kind}: f64 route");
        assert_eq!(coarse.status, 200, "{kind}: u8 route");
        assert_eq!(
            coarse.header("content-type"),
            Some("application/x-lsga-u8"),
            "{kind}"
        );
        let values = exact.decode_f64();
        assert_eq!(
            coarse.body.len(),
            values.len(),
            "{kind}: one byte per pixel"
        );
        let decoded = coarse.decode_u8().expect("range headers present");
        let min: f64 = coarse.header("x-lsga-min").unwrap().parse().unwrap();
        let max: f64 = coarse.header("x-lsga-max").unwrap().parse().unwrap();
        let step = (max - min) / 255.0;
        assert!(
            step.is_finite() && step >= 0.0,
            "{kind}: range {min}..{max}"
        );
        for (i, (&v, &d)) in values.iter().zip(&decoded).enumerate() {
            assert!(
                (d - v).abs() <= step * 0.501 + 1e-12,
                "{kind}: pixel {i} decoded {d}, expected {v} ± {step}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// u8 quantization totality over extreme tile ranges (the wire-encoder
// edition of PR 4's finiteness sweep). The historical bug: a tile whose
// min/max differ by a *subnormal* amount passed the old `scale > 0.0`
// guard, `(v - min) / scale` overflowed to inf, and every pixel
// saturated to 255 — the dequantized tile read as `max` instead of
// `min`. The encoder must stay total and invertible-within-a-step for
// magnitudes from deep subnormals to ranges wider than f64 itself.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    fn u8_quantization_is_total_over_extreme_ranges(
        raw in prop::collection::vec((-320i32..=307, 1.0f64..10.0, any::<bool>()), 4usize..=16),
    ) {
        use lsga::http::{dequantize, tile_response, PayloadFmt};
        use lsga::serve::{Tile, TileCoord, TileKey, TileTier};
        let values: Vec<f64> = raw
            .iter()
            .map(|&(exp, m, neg)| {
                let v = m * 10f64.powi(exp);
                if neg { -v } else { v }
            })
            .collect();
        let px = values.len();
        let spec = lsga::core::GridSpec::new(BBox::new(0.0, 0.0, 1.0, 1.0), px, 1);
        let tile = Tile {
            key: TileKey { layer: 0, coord: TileCoord::new(0, 0, 0), bin: 0 },
            grid: lsga::core::DensityGrid::from_values(spec, values.clone()),
            tier: TileTier::Exact,
        };
        let resp = tile_response(&tile, PayloadFmt::U8);
        prop_assert_eq!(resp.status, 200);
        prop_assert_eq!(resp.body.len(), px);
        let hdr = |name: &str| -> f64 {
            resp.headers
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or(f64::NAN)
        };
        let (min, max) = (hdr("X-Lsga-Min"), hdr("X-Lsga-Max"));
        let true_min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let true_max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // The range headers round-trip through Display bit-exactly.
        prop_assert_eq!(min.to_bits(), true_min.to_bits());
        prop_assert_eq!(max.to_bits(), true_max.to_bits());

        let scale = max - min;
        for (&q, &v) in resp.body.iter().zip(&values) {
            let d = dequantize(q, min, max);
            prop_assert!(d.is_finite(), "dequantize({q}, {min}, {max}) = {d}");
            if scale.is_finite() && scale >= f64::MIN_POSITIVE {
                // Within half a step, plus the rounding granularity of
                // values whose magnitude dwarfs the range.
                let bound = scale / 255.0 * 0.501
                    + min.abs().max(max.abs()) * f64::EPSILON * 2.0;
                prop_assert!(
                    (d - v).abs() <= bound,
                    "q={q} v={v} d={d} scale={scale}: off by {}",
                    (d - v).abs()
                );
            } else if scale.is_finite() {
                // Sub-resolution (or zero) range: constant-tile coding.
                prop_assert_eq!(q, 0u8, "subnormal scale must encode as 0");
                prop_assert_eq!(d.to_bits(), min.to_bits());
            } else {
                // Range wider than f64: halved-space quantization.
                let half = (max / 2.0 - min / 2.0) / 255.0;
                prop_assert!(
                    (d / 2.0 - v / 2.0).abs() <= half * 1.001,
                    "q={q} v={v} d={d}: halved-space error {}",
                    (d / 2.0 - v / 2.0).abs()
                );
            }
        }
    }
}
