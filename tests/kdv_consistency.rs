//! Cross-method KDV consistency: every acceleration family must agree
//! with the naive Definition 1 evaluation within its documented
//! guarantee, on realistic (clustered) workloads.

use lsga::prelude::*;
use lsga::{data, dist, kdv};

fn workload(n: usize) -> (Vec<Point>, BBox) {
    let window = BBox::new(0.0, 0.0, 200.0, 150.0);
    let hotspots = [
        Hotspot {
            center: Point::new(50.0, 40.0),
            sigma: 8.0,
            weight: 2.0,
        },
        Hotspot {
            center: Point::new(150.0, 100.0),
            sigma: 15.0,
            weight: 1.0,
        },
        Hotspot {
            center: Point::new(100.0, 75.0),
            sigma: 40.0,
            weight: 0.5,
        },
    ];
    (data::gaussian_mixture(n, &hotspots, window, 2024), window)
}

#[test]
fn exact_methods_agree_for_polynomial_kernels() {
    let (points, window) = workload(1500);
    let spec = GridSpec::new(window, 48, 36);
    for kind in [
        KernelKind::Uniform,
        KernelKind::Epanechnikov,
        KernelKind::Quartic,
    ] {
        let b = 12.0;
        let kernel = kind.with_bandwidth(b);
        let naive = kdv::naive_kdv(&points, spec, kernel);
        let pruned = kdv::grid_pruned_kdv(&points, spec, kernel, 1e-9);
        let slam = kdv::slam_kdv(&points, spec, PolyKernel::new(kind, b).unwrap());
        let parallel = kdv::parallel_kdv(&points, spec, kernel, 1e-9, 4);
        let (distributed, _) = dist::distributed_kdv(
            &points,
            spec,
            kernel,
            1e-9,
            4,
            dist::PartitionStrategy::BalancedKd,
        );
        let tol_ref = naive.max().max(1e-12);
        assert!(naive.linf_diff(&pruned) < 1e-9, "{kind:?} pruned");
        // The degree-4 moment expansion loses ~8 digits to
        // cancellation at these coordinate magnitudes; 1e-6 relative is
        // the documented accuracy envelope.
        assert!(
            slam.rel_diff(&naive, tol_ref * 1e-3) < 1e-6,
            "{kind:?} slam: {}",
            slam.rel_diff(&naive, tol_ref * 1e-3)
        );
        assert_eq!(pruned.values(), parallel.values(), "{kind:?} parallel");
        assert!(
            distributed.linf_diff(&pruned) <= pruned.max() * 1e-12,
            "{kind:?} distributed: {}",
            distributed.linf_diff(&pruned)
        );
    }
}

#[test]
fn infinite_support_kernels_within_tail_tolerance() {
    let (points, window) = workload(600);
    let spec = GridSpec::new(window, 32, 24);
    for kind in [KernelKind::Gaussian, KernelKind::Exponential] {
        let kernel = kind.with_bandwidth(10.0);
        let naive = kdv::naive_kdv(&points, spec, kernel);
        let tail = 1e-9;
        let pruned = kdv::grid_pruned_kdv(&points, spec, kernel, tail);
        let bound = points.len() as f64 * tail;
        assert!(
            naive.linf_diff(&pruned) <= bound + 1e-12,
            "{kind:?}: {} vs {}",
            naive.linf_diff(&pruned),
            bound
        );
    }
}

#[test]
fn bounds_method_honors_epsilon_on_workload() {
    let (points, window) = workload(800);
    let spec = GridSpec::new(window, 24, 18);
    let engine = kdv::BoundsKdv::new(&points);
    let kernel = Gaussian::new(15.0);
    let exact = kdv::naive_kdv(&points, spec, kernel);
    for eps in [0.02, 0.2] {
        let approx = engine.compute(spec, kernel, eps);
        for (a, e) in approx.values().iter().zip(exact.values()) {
            assert!(
                *a >= (1.0 - eps) * e - 1e-9 && *a <= (1.0 + eps) * e + 1e-9,
                "eps={eps}: {a} vs {e}"
            );
        }
    }
}

#[test]
fn sampling_error_shrinks_with_sample_size() {
    let (points, window) = workload(4000);
    let spec = GridSpec::new(window, 24, 18);
    let kernel = Epanechnikov::new(20.0);
    let exact = kdv::grid_pruned_kdv(&points, spec, kernel, 1e-9);
    // Average L-infinity error over several seeds must shrink as m grows.
    let mean_err = |m: usize| -> f64 {
        (0..5)
            .map(|s| kdv::sampling_kdv(&points, spec, kernel, m, s).linf_diff(&exact))
            .sum::<f64>()
            / 5.0
    };
    let coarse = mean_err(100);
    let fine = mean_err(2000);
    assert!(
        fine < coarse * 0.6,
        "sampling error did not shrink: {coarse} -> {fine}"
    );
}

#[test]
fn safe_multi_bandwidth_consistent_with_singles() {
    let (points, window) = workload(700);
    let spec = GridSpec::new(window, 24, 18);
    let bandwidths = [5.0, 11.0, 23.0];
    let shared = kdv::safe_multi_bandwidth(&points, spec, KernelKind::Quartic, &bandwidths);
    for (b, grid) in bandwidths.iter().zip(&shared) {
        let single = kdv::grid_pruned_kdv(&points, spec, Quartic::new(*b), 1e-9);
        assert!(
            grid.rel_diff(&single, single.max().max(1e-12) * 1e-3) < 1e-9,
            "b={b}"
        );
    }
}

#[test]
fn hotspot_recovery_across_methods() {
    let (points, window) = workload(3000);
    let spec = GridSpec::new(window, 64, 48);
    let truth = Point::new(50.0, 40.0); // the heaviest hotspot
    let kernel = Quartic::new(10.0);
    let grids = [
        kdv::grid_pruned_kdv(&points, spec, kernel, 1e-9),
        kdv::slam_kdv(
            &points,
            spec,
            PolyKernel::new(KernelKind::Quartic, 10.0).unwrap(),
        ),
        kdv::sampling_kdv(&points, spec, kernel, 1500, 3),
    ];
    for g in &grids {
        assert!(
            g.hotspot().dist(&truth) < 10.0,
            "hotspot at {:?}",
            g.hotspot()
        );
    }
}

#[test]
fn stkdv_methods_agree_on_wave_data() {
    let window = BBox::new(0.0, 0.0, 100.0, 100.0);
    let waves = [
        Wave {
            hotspot: Hotspot {
                center: Point::new(25.0, 30.0),
                sigma: 5.0,
                weight: 1.0,
            },
            t_peak: 10.0,
            t_sigma: 3.0,
        },
        Wave {
            hotspot: Hotspot {
                center: Point::new(70.0, 65.0),
                sigma: 5.0,
                weight: 1.5,
            },
            t_peak: 35.0,
            t_sigma: 3.0,
        },
    ];
    let points = data::epidemic_waves(500, &waves, window, 11);
    let spec = GridSpec::new(window, 20, 20);
    let ks = Epanechnikov::new(12.0);
    let kt = PolyKernel::new(KernelKind::Epanechnikov, 6.0).unwrap();
    let naive = kdv::stkdv_naive(&points, spec, 0.0, 45.0, 9, ks, kt);
    let sweep = kdv::stkdv_sweep(&points, spec, 0.0, 45.0, 9, ks, kt, 1e-9);
    assert!(naive.linf_diff(&sweep) < 1e-8);
}
