//! The quality-tier state machine, proven against the exact oracle.
//!
//! Contracts pinned here:
//!
//! - **Exact tier**: a request without a policy, or one the admission
//!   controller admits, serves bits identical to [`compute_tile_direct`]
//!   — and an exact request treats a degraded cache entry as a miss,
//!   never as an answer.
//! - **Degraded tier**: a forced-degrade request serves a tile stamped
//!   with its tier metadata (mode, ε, seed, sample size), whose raster
//!   respects the stamped guarantee — additive `ε·n·K(0)` for sampling
//!   (Eq. 7), relative `(1±ε)` for bound-refinement (Eq. 6).
//! - **Refinement**: a committed degraded entry is upgraded in the
//!   background to the bit-exact tile; a refinement racing an append
//!   (generation bump) or a foreground exact compute is discarded, never
//!   applied — counted in `serve.refine_discards`.
//!
//! Degrade decisions are made deterministic the same way the CI job
//! does it: `set_compute_estimate` seeds the admission EWMA and a zero
//! deadline makes every cold policy request degrade.

use lsga::core::par::Threads;
use lsga::obs;
use lsga::prelude::*;
use lsga::serve::{
    compute_tile_direct, ApproxMode, QualityPolicy, TileCoord, TileServer, TileServerConfig,
    TileTier,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

// The obs registry is process-global; every test that enables/drains it
// serializes here.
static LOCK: Mutex<()> = Mutex::new(());

const TILE_PX: usize = 32;

fn window() -> BBox {
    BBox::new(0.0, 0.0, 100.0, 100.0)
}

fn points(n: usize) -> Vec<Point> {
    lsga::data::uniform_points(n, window(), 77)
}

fn server() -> TileServer {
    TileServer::new(TileServerConfig {
        tile_px: TILE_PX,
        max_zoom: 3,
        shards: 4,
        byte_budget: 1 << 22,
        threads: Threads::exact(2),
        ..TileServerConfig::default()
    })
}

fn sampling_policy(eps: f64) -> QualityPolicy {
    QualityPolicy::new(
        Duration::ZERO,
        ApproxMode::Sampling {
            eps,
            delta: 0.01,
            seed: 5,
        },
    )
    .unwrap()
}

/// Park the refinement worker until the gate opens, so tests can
/// observe the cache in its degraded state and stage races on purpose.
fn gate_refinements(s: &TileServer) -> Arc<AtomicBool> {
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    s.set_refine_hook(Some(Arc::new(move |_key| {
        while !g.load(Ordering::Acquire) {
            thread::yield_now();
        }
    })));
    gate
}

#[test]
fn policy_constructor_rejects_nonsense_parameters() {
    let d = Duration::from_millis(10);
    for (eps, delta) in [
        (0.0, 0.1),
        (-0.5, 0.1),
        (f64::NAN, 0.1),
        (f64::INFINITY, 0.1),
        (0.1, 0.0),
        (0.1, 1.0),
        (0.1, -1.0),
        (0.1, f64::NAN),
    ] {
        assert!(
            QualityPolicy::new(
                d,
                ApproxMode::Sampling {
                    eps,
                    delta,
                    seed: 1
                }
            )
            .is_err(),
            "Sampling eps={eps} delta={delta} must be rejected"
        );
    }
    for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        assert!(
            QualityPolicy::new(d, ApproxMode::Bounds { eps }).is_err(),
            "Bounds eps={eps} must be rejected"
        );
    }
    // The valid case precomputes the Eq. 7 sample size.
    let p = QualityPolicy::new(
        d,
        ApproxMode::Sampling {
            eps: 0.05,
            delta: 0.01,
            seed: 1,
        },
    )
    .unwrap();
    assert_eq!(
        p.sample_size(),
        lsga::kdv::sample_size_for_guarantee(0.05, 0.01).unwrap()
    );
}

#[test]
fn degraded_tile_is_stamped_bounded_and_then_refined_to_exact_bits() {
    let pts = points(4_000);
    let kernel = KernelKind::Quartic.with_bandwidth(8.0);
    let s = server();
    let layer = s.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();
    let gate = gate_refinements(&s);
    s.set_compute_estimate(Duration::from_secs(1));
    let eps = 0.1;
    let policy = sampling_policy(eps);

    let c = TileCoord::new(1, 1, 0);
    let tile = s
        .get_tile_with_policy(layer, c.z, c.x, c.y, &policy)
        .unwrap();

    // Tier metadata records exactly how the raster was produced.
    match tile.tier {
        TileTier::Sampled {
            eps: e,
            delta,
            seed,
            sample_size,
            n,
        } => {
            assert_eq!(e, eps);
            assert_eq!(delta, 0.01);
            assert_eq!(seed, 5);
            assert_eq!(n, pts.len());
            assert_eq!(sample_size, policy.sample_size().min(pts.len()));
        }
        ref t => panic!("expected a Sampled tier, got {t:?}"),
    }

    // The raster respects the stamped additive bound (2× slack for δ).
    let oracle = compute_tile_direct(&pts, &window(), kernel, 1e-9, TILE_PX, c);
    let bound = eps * pts.len() as f64 * kernel.max_value();
    let linf = tile
        .grid
        .values()
        .iter()
        .zip(oracle.values())
        .map(|(a, e)| (a - e).abs())
        .fold(0.0f64, f64::max);
    assert!(linf <= 2.0 * bound, "L∞ {linf} exceeds 2×bound {bound}");

    // While the refinement worker is parked the cache entry stays at the
    // degraded tier...
    let cached = s.cached_tier(layer, c.z, c.x, c.y).expect("cached entry");
    assert!(
        !cached.is_exact(),
        "entry must still be degraded: {cached:?}"
    );

    // ...and once released, the background upgrade lands the bit-exact
    // tile without any further request.
    gate.store(true, Ordering::Release);
    s.drain_refinements();
    assert!(matches!(
        s.cached_tier(layer, c.z, c.x, c.y),
        Some(TileTier::Exact)
    ));
    s.set_compute_estimate(Duration::ZERO);
    let refined = s.get_tile(layer, c.z, c.x, c.y).unwrap();
    for (a, b) in refined.grid.values().iter().zip(oracle.values()) {
        assert_eq!(a.to_bits(), b.to_bits(), "refined tile must be bit-exact");
    }
}

#[test]
fn bounds_mode_respects_the_relative_guarantee() {
    let pts = points(3_000);
    let kernel = KernelKind::Quartic.with_bandwidth(10.0);
    let s = server();
    let layer = s.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();
    s.set_compute_estimate(Duration::from_secs(1));
    let eps = 0.05;
    let policy = QualityPolicy::new(Duration::ZERO, ApproxMode::Bounds { eps }).unwrap();

    let c = TileCoord::new(1, 0, 1);
    let tile = s
        .get_tile_with_policy(layer, c.z, c.x, c.y, &policy)
        .unwrap();
    assert!(matches!(tile.tier, TileTier::Bounds { eps: e } if e == eps));

    let oracle = compute_tile_direct(&pts, &window(), kernel, 1e-9, TILE_PX, c);
    for (a, e) in tile.grid.values().iter().zip(oracle.values()) {
        assert!(
            (a - e).abs() <= eps * e + 1e-9,
            "pixel {a} outside (1±{eps}) of exact {e}"
        );
    }
    s.drain_refinements();
}

#[test]
fn exact_requests_treat_degraded_entries_as_misses() {
    let _g = LOCK.lock().unwrap();
    obs::reset();
    obs::enable();

    let pts = points(2_500);
    let kernel = KernelKind::Quartic.with_bandwidth(8.0);
    let s = server();
    let layer = s.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();
    let gate = gate_refinements(&s);
    s.set_compute_estimate(Duration::from_secs(1));

    let c = TileCoord::new(2, 3, 1);
    let t = s
        .get_tile_with_policy(layer, c.z, c.x, c.y, &sampling_policy(0.1))
        .unwrap();
    assert!(!t.tier.is_exact());

    // An exact request must not accept the degraded entry: it recomputes
    // and its answer is the oracle, which also upgrades the cache.
    let exact = s.get_tile(layer, c.z, c.x, c.y).unwrap();
    let oracle = compute_tile_direct(&pts, &window(), kernel, 1e-9, TILE_PX, c);
    for (a, b) in exact.grid.values().iter().zip(oracle.values()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert!(matches!(
        s.cached_tier(layer, c.z, c.x, c.y),
        Some(TileTier::Exact)
    ));

    // The parked refinement now targets an exact entry → discarded.
    gate.store(true, Ordering::Release);
    s.drain_refinements();

    let snap = obs::drain();
    obs::disable();
    assert_eq!(snap.counter("serve.degraded_tiles"), 1);
    assert_eq!(
        snap.counter("serve.refine_discards"),
        1,
        "refinement of an already-exact entry must be discarded"
    );
    assert_eq!(snap.counter("serve.refined_tiles"), 0);
    // Exact path computed once (degraded computes are not tiles_computed).
    assert_eq!(snap.counter("serve.tiles_computed"), 1);
}

#[test]
fn refinement_racing_an_append_is_discarded_not_applied() {
    let _g = LOCK.lock().unwrap();
    obs::reset();
    obs::enable();

    let mut pts = points(2_500);
    let kernel = KernelKind::Quartic.with_bandwidth(8.0);
    let s = server();
    let layer = s.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();
    let gate = gate_refinements(&s);
    s.set_compute_estimate(Duration::from_secs(1));

    // Degrade a tile; its refinement is enqueued at generation g and
    // parked at the gate.
    let c = TileCoord::new(1, 0, 0);
    let t = s
        .get_tile_with_policy(layer, c.z, c.x, c.y, &sampling_policy(0.1))
        .unwrap();
    assert!(!t.tier.is_exact());

    // Append inside the tile's footprint: generation becomes g+1 and the
    // degraded entry is invalidated.
    let batch = vec![Point::new(10.0, 10.0), Point::new(12.0, 11.0)];
    s.insert_points(layer, &batch).unwrap();
    pts.extend_from_slice(&batch);

    // The stale refinement must be dropped, not committed over g+1 data.
    gate.store(true, Ordering::Release);
    s.drain_refinements();
    let snap = obs::drain();
    obs::disable();
    assert!(
        snap.counter("serve.refine_discards") >= 1,
        "stale refinement must be discarded"
    );
    assert_eq!(snap.counter("serve.refined_tiles"), 0);

    // A fresh exact read serves the post-append oracle.
    s.set_compute_estimate(Duration::ZERO);
    let exact = s.get_tile(layer, c.z, c.x, c.y).unwrap();
    let oracle = compute_tile_direct(&pts, &window(), kernel, 1e-9, TILE_PX, c);
    for (a, b) in exact.grid.values().iter().zip(oracle.values()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn warm_exact_entries_short_circuit_the_policy_path() {
    let pts = points(2_000);
    let kernel = KernelKind::Quartic.with_bandwidth(8.0);
    let s = server();
    let layer = s.add_layer(pts, window(), kernel, 1e-9).unwrap();

    // Warm the tile exact, then ask again with a policy that would
    // otherwise always degrade: the hit answers at the exact tier.
    let c = TileCoord::new(2, 1, 1);
    let warm = s.get_tile(layer, c.z, c.x, c.y).unwrap();
    s.set_compute_estimate(Duration::from_secs(1));
    let hit = s
        .get_tile_with_policy(layer, c.z, c.x, c.y, &sampling_policy(0.1))
        .unwrap();
    assert!(
        hit.tier.is_exact(),
        "warm exact entry must win over degrade"
    );
    assert!(Arc::ptr_eq(&warm, &hit), "must be the cached tile itself");
}

#[test]
fn unseeded_controller_degrades_behind_inflight_leaders_and_bootstraps_when_idle() {
    let pts = points(2_500);
    let kernel = KernelKind::Quartic.with_bandwidth(8.0);
    let s = server();
    let layer = s.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();

    // Regression (cold-start admission hole): with the EWMA unseeded —
    // no `set_compute_estimate`, no exact compute yet — and one exact
    // leader parked mid-compute, the old `ewma > 0` guard admitted
    // every deadline request straight onto the exact path, behind a
    // queue of unknown depth. It must degrade instead.
    let a = TileCoord::new(1, 0, 0);
    let gate = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(AtomicBool::new(false));
    {
        let gate = Arc::clone(&gate);
        let entered = Arc::clone(&entered);
        s.set_compute_hook(Some(Arc::new(move |key| {
            if key.coord == a {
                entered.store(true, Ordering::Release);
                while !gate.load(Ordering::Acquire) {
                    thread::yield_now();
                }
            }
        })));
    }
    thread::scope(|scope| {
        let leader = scope.spawn(|| s.get_tile(layer, a.z, a.x, a.y).unwrap());
        while !entered.load(Ordering::Acquire) {
            thread::yield_now();
        }
        // Unseeded: the estimate reads zero even with a leader in flight.
        assert_eq!(s.estimated_queue_wait(), Duration::ZERO);
        let b = TileCoord::new(1, 1, 1);
        let t = s
            .get_tile_with_policy(layer, b.z, b.x, b.y, &sampling_policy(0.1))
            .unwrap();
        assert!(
            !t.tier.is_exact(),
            "unseeded controller with an in-flight leader must degrade, got {:?}",
            t.tier
        );
        gate.store(true, Ordering::Release);
        let warm = leader.join().unwrap();
        assert!(warm.tier.is_exact());
    });
    s.set_compute_hook(None);
    s.drain_refinements();

    // Bootstrap path: with zero leaders in flight the same unseeded
    // controller admits the request — its own compute becomes the seed.
    let s2 = server();
    let layer2 = s2.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();
    assert_eq!(s2.estimated_queue_wait(), Duration::ZERO);
    let c = TileCoord::new(1, 1, 0);
    let tile = s2
        .get_tile_with_policy(layer2, c.z, c.x, c.y, &sampling_policy(0.1))
        .unwrap();
    assert!(
        tile.tier.is_exact(),
        "idle unseeded controller must admit (and seed itself)"
    );
    let oracle = compute_tile_direct(&pts, &window(), kernel, 1e-9, TILE_PX, c);
    for (x, y) in tile.grid.values().iter().zip(oracle.values()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert!(
        s2.estimated_queue_wait() > Duration::ZERO,
        "the admitted compute must seed the EWMA"
    );
}

#[test]
fn admitted_requests_serve_exact_bits_under_generous_deadlines() {
    let pts = points(2_000);
    let kernel = KernelKind::Quartic.with_bandwidth(8.0);
    let s = server();
    let layer = s.add_layer(pts.clone(), window(), kernel, 1e-9).unwrap();
    // Tiny estimate, huge deadline: the controller admits everything.
    s.set_compute_estimate(Duration::from_nanos(1));
    let policy = QualityPolicy::new(
        Duration::from_secs(60),
        ApproxMode::Sampling {
            eps: 0.1,
            delta: 0.01,
            seed: 5,
        },
    )
    .unwrap();
    let c = TileCoord::new(2, 0, 2);
    let tile = s
        .get_tile_with_policy(layer, c.z, c.x, c.y, &policy)
        .unwrap();
    assert!(tile.tier.is_exact());
    let oracle = compute_tile_direct(&pts, &window(), kernel, 1e-9, TILE_PX, c);
    for (a, b) in tile.grid.values().iter().zip(oracle.values()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
