//! Correlation-analysis pipeline: points -> quadrat counts -> Moran's I /
//! General G, and clustering recovery — the Table 1 tools working
//! together on generator ground truth.

use lsga::prelude::*;
use lsga::stats::{self, SpatialWeights};
use lsga::{data, stats::areal};

fn window() -> BBox {
    BBox::new(0.0, 0.0, 100.0, 100.0)
}

#[test]
fn clustered_points_are_significant_under_both_statistics() {
    let points = data::gaussian_mixture(
        2000,
        &[
            Hotspot {
                center: Point::new(25.0, 25.0),
                sigma: 7.0,
                weight: 1.0,
            },
            Hotspot {
                center: Point::new(75.0, 70.0),
                sigma: 7.0,
                weight: 1.0,
            },
        ],
        window(),
        19,
    );
    let spec = GridSpec::new(window(), 12, 12);
    let counts = areal::quadrat_counts(&points, spec);
    let centers = areal::cell_centers(&spec);
    let w = SpatialWeights::distance_band(&centers, 9.0);

    let moran = stats::morans_i(counts.values(), &w, 199, 1).unwrap();
    assert!(moran.i > 0.3, "I = {}", moran.i);
    assert!(moran.p_perm.unwrap() < 0.02);

    let g = stats::general_g(counts.values(), &w, 199, 2).unwrap();
    assert!(g.g > g.expected);
    assert!(g.p_perm < 0.02);
}

#[test]
fn csr_points_are_not_significant() {
    let points = data::uniform_points(2000, window(), 4242);
    let spec = GridSpec::new(window(), 10, 10);
    let counts = areal::quadrat_counts(&points, spec);
    let centers = areal::cell_centers(&spec);
    let w = SpatialWeights::distance_band(&centers, 11.0);
    let moran = stats::morans_i(counts.values(), &w, 499, 3).unwrap();
    assert!(moran.i.abs() < 0.2, "I = {}", moran.i);
    assert!(moran.p_perm.unwrap() > 0.05, "p = {:?}", moran.p_perm);
}

#[test]
fn dbscan_recovers_generator_components() {
    let (points, truth) = data::gaussian_mixture_labeled(
        900,
        &[
            Hotspot {
                center: Point::new(20.0, 20.0),
                sigma: 3.0,
                weight: 1.0,
            },
            Hotspot {
                center: Point::new(80.0, 30.0),
                sigma: 3.0,
                weight: 1.0,
            },
            Hotspot {
                center: Point::new(50.0, 80.0),
                sigma: 3.0,
                weight: 1.0,
            },
        ],
        window(),
        5,
    );
    let res = stats::dbscan(&points, 3.0, 5);
    assert_eq!(res.n_clusters, 3, "found {} clusters", res.n_clusters);
    let got: Vec<i64> = res.labels.iter().map(|l| *l as i64).collect();
    let want: Vec<i64> = truth.iter().map(|l| *l as i64).collect();
    assert!(
        stats::adjusted_rand_index(&got, &want) > 0.9,
        "ARI = {}",
        stats::adjusted_rand_index(&got, &want)
    );
}

#[test]
fn kmeans_matches_dbscan_on_well_separated_blobs() {
    let (points, truth) = data::gaussian_mixture_labeled(
        600,
        &[
            Hotspot {
                center: Point::new(20.0, 80.0),
                sigma: 4.0,
                weight: 1.0,
            },
            Hotspot {
                center: Point::new(80.0, 20.0),
                sigma: 4.0,
                weight: 1.0,
            },
        ],
        window(),
        6,
    );
    let km = stats::kmeans(&points, 2, 100, 1);
    let got: Vec<i64> = km.labels.iter().map(|l| *l as i64).collect();
    let want: Vec<i64> = truth.iter().map(|l| *l as i64).collect();
    assert!(stats::adjusted_rand_index(&got, &want) > 0.95);
}

#[test]
fn knn_weights_work_for_moran_too() {
    let points = data::gaussian_mixture(
        1500,
        &[Hotspot {
            center: Point::new(40.0, 60.0),
            sigma: 8.0,
            weight: 1.0,
        }],
        window(),
        8,
    );
    let spec = GridSpec::new(window(), 10, 10);
    let counts = areal::quadrat_counts(&points, spec);
    let centers = areal::cell_centers(&spec);
    let mut w = SpatialWeights::knn(&centers, 4);
    w.row_standardize();
    let moran = stats::morans_i(counts.values(), &w, 99, 10).unwrap();
    assert!(moran.i > 0.3, "I = {}", moran.i);
}
