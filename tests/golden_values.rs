//! Golden-value regression suite: exact bit-level digests of the core
//! analytics on small seeded datasets.
//!
//! Every constant below is an FNV-1a hash over the little-endian bytes
//! of `f64::to_bits` (or the raw `u64`s for count outputs) of a
//! deterministic computation. The repo's discipline is that refactors —
//! SoA microkernels, thread pools, caches, serving layers — must be
//! **bit-identical** to the code they replace, so these digests should
//! never change by accident; silent numeric drift fails this suite
//! loudly instead of surfacing months later as a subtly different
//! heatmap.
//!
//! # Update procedure
//!
//! If a change *intentionally* alters numerics (e.g. a new kernel
//! definition or a deliberate fold-order change), rerun with the
//! environment variable `LSGA_PRINT_GOLDEN=1`:
//!
//! ```text
//! LSGA_PRINT_GOLDEN=1 cargo test --test golden_values -- --nocapture
//! ```
//!
//! each test prints `name = 0x…;` lines — paste them over the
//! constants below, and justify the change in the PR description
//! (which fold order moved, why the old bits were not canonical).
//! Never update these constants to quiet a failure you cannot explain.
//!
//! The digests are pinned at `LSGA_THREADS`-invariant code paths, so
//! they must pass identically at any thread count (CI runs 1 and 8).

use lsga::core::par::Threads;
use lsga::prelude::*;
use lsga::serve::{
    compute_tile_direct, HotspotCompute, HotspotStat, NkdvCompute, StkdvCompute, TileCoord,
    TileServer, TileServerConfig,
};
use lsga::stats::SpatialWeights;
use lsga::{data, interp, kdv, kfunc, network, stats};
use std::sync::Arc;

/// FNV-1a over little-endian bytes.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn digest_f64(values: &[f64]) -> u64 {
    fnv1a(values.iter().flat_map(|v| v.to_bits().to_le_bytes()))
}

fn digest_u64(values: &[u64]) -> u64 {
    fnv1a(values.iter().flat_map(|v| v.to_le_bytes()))
}

fn check(name: &str, actual: u64) {
    if std::env::var("LSGA_PRINT_GOLDEN").is_ok() {
        println!("{name} = {actual:#018x};");
    }
}

fn window() -> BBox {
    BBox::new(0.0, 0.0, 100.0, 100.0)
}

#[test]
fn golden_kdv_grid_pruned() {
    const GOLDEN: u64 = 0xd80de57d402ef081;
    let pts = data::gaussian_mixture(
        400,
        &[Hotspot {
            center: Point::new(35.0, 60.0),
            sigma: 7.0,
            weight: 1.0,
        }],
        window(),
        42,
    );
    let spec = GridSpec::new(window(), 32, 24);
    let grid = kdv::grid_pruned_kdv(&pts, spec, KernelKind::Quartic.with_bandwidth(8.0), 1e-9);
    let actual = digest_f64(grid.values());
    check("golden_kdv_grid_pruned", actual);
    assert_eq!(actual, GOLDEN, "KDV raster bits drifted: {actual:#018x}");
}

#[test]
fn golden_kdv_naive_gaussian() {
    const GOLDEN: u64 = 0x2f1d2987d5d1da67;
    let pts = data::uniform_points(200, window(), 7);
    let spec = GridSpec::new(window(), 16, 16);
    let grid = kdv::naive_kdv(&pts, spec, Gaussian::new(6.0));
    let actual = digest_f64(grid.values());
    check("golden_kdv_naive_gaussian", actual);
    assert_eq!(actual, GOLDEN, "naive KDV bits drifted: {actual:#018x}");
}

#[test]
fn golden_k_function_counts() {
    const GOLDEN: u64 = 0x2d284c736ba7ca7a;
    let pts = data::uniform_points(300, window(), 11);
    let counts = kfunc::histogram_k_all(&pts, &[2.0, 5.0, 10.0, 20.0], KConfig::default());
    let actual = digest_u64(&counts);
    check("golden_k_function_counts", actual);
    assert_eq!(actual, GOLDEN, "K-function counts drifted: {actual:#018x}");
}

#[test]
fn golden_morans_i() {
    const GOLDEN: u64 = 0x1ca2f30cc13ba644;
    let k = 9;
    let pts: Vec<Point> = (0..k * k)
        .map(|i| Point::new((i % k) as f64, (i / k) as f64))
        .collect();
    let w = SpatialWeights::distance_band(&pts, 1.0);
    let values: Vec<f64> = (0..k * k).map(|i| ((i * 7) % 13) as f64).collect();
    let r = stats::morans_i_threads(&values, &w, 99, 5, Threads::auto()).expect("defined");
    let fields = [
        r.i,
        r.expected,
        r.z_norm,
        r.p_norm,
        r.z_perm.expect("permutations ran"),
        r.p_perm.expect("permutations ran"),
    ];
    let actual = digest_f64(&fields);
    check("golden_morans_i", actual);
    assert_eq!(actual, GOLDEN, "Moran's I drifted: {actual:#018x}");
}

#[test]
fn golden_idw() {
    const GOLDEN: u64 = 0xbc7c3abd112d16ea;
    let samples: Vec<(Point, f64)> = data::uniform_points(60, window(), 13)
        .into_iter()
        .map(|p| (p, 3.0 + 0.08 * p.x - 0.05 * p.y))
        .collect();
    let spec = GridSpec::new(window(), 12, 10);
    let grid = interp::idw_naive(&samples, spec, 2.0);
    let actual = digest_f64(grid.values());
    check("golden_idw", actual);
    assert_eq!(actual, GOLDEN, "IDW raster bits drifted: {actual:#018x}");
}

#[test]
fn golden_served_tile() {
    // Pins the serving layer's tile geometry *and* the pruned sweep
    // over a `with_bbox` index — the exact bits `TileServer` serves.
    const GOLDEN: u64 = 0x66ef73e5d1b5f51a;
    let pts = data::gaussian_mixture(
        250,
        &[Hotspot {
            center: Point::new(70.0, 30.0),
            sigma: 6.0,
            weight: 1.0,
        }],
        window(),
        21,
    );
    let kernel = KernelKind::Epanechnikov.with_bandwidth(9.0);
    let grid = compute_tile_direct(&pts, &window(), kernel, 1e-9, 32, TileCoord::new(2, 2, 1));
    let actual = digest_f64(grid.values());
    check("golden_served_tile", actual);
    assert_eq!(actual, GOLDEN, "served-tile bits drifted: {actual:#018x}");
}

/// A 16-px tile server for the multi-analytic golden tiles; each test
/// pins the bits the *server* emits, cache and flight machinery
/// included.
fn golden_server() -> TileServer {
    TileServer::new(TileServerConfig {
        tile_px: 16,
        max_zoom: 2,
        shards: 2,
        threads: Threads::exact(2),
        ..TileServerConfig::default()
    })
}

#[test]
fn golden_served_stkdv_bin() {
    const GOLDEN: u64 = 0x53e2334e1a1c4ae3;
    let pts = data::uniform_timed_points(200, window(), 0.0, 40.0, 33);
    let s = golden_server();
    let layer = s
        .add_compute_layer(Arc::new(
            StkdvCompute::new(
                &pts,
                window(),
                KernelKind::Epanechnikov.with_bandwidth(12.0),
                PolyKernel::new(KernelKind::Quartic, 7.0).expect("temporal kernel"),
                0.0,
                40.0,
                5,
                1e-9,
            )
            .expect("stkdv compute"),
        ))
        .expect("layer");
    let tile = s.get_tile_binned(layer, 1, 0, 1, 3).expect("tile");
    let actual = digest_f64(tile.grid.values());
    check("golden_served_stkdv_bin", actual);
    assert_eq!(actual, GOLDEN, "STKDV tile bits drifted: {actual:#018x}");
}

#[test]
fn golden_served_nkdv_raster() {
    const GOLDEN: u64 = 0x875298d0bd5101b6;
    let net = Arc::new(network::grid_network(6, 6, 20.0));
    let lixels = Arc::new(Lixels::build(&net, 5.0));
    let events = network::sample_on_network(&net, 80, 27);
    let s = golden_server();
    let layer = s
        .add_compute_layer(Arc::new(
            NkdvCompute::new(
                net,
                lixels,
                &events,
                KernelKind::Quartic.with_bandwidth(18.0),
            )
            .expect("nkdv compute"),
        ))
        .expect("layer");
    let tile = s.get_tile(layer, 1, 1, 0).expect("tile");
    let actual = digest_f64(tile.grid.values());
    check("golden_served_nkdv_raster", actual);
    assert_eq!(actual, GOLDEN, "NKDV tile bits drifted: {actual:#018x}");
}

#[test]
fn golden_served_gi_star_overlay() {
    const GOLDEN: u64 = 0xd42ea190cb32f0d7;
    let pts = data::gaussian_mixture(
        300,
        &[Hotspot {
            center: Point::new(30.0, 70.0),
            sigma: 8.0,
            weight: 1.0,
        }],
        window(),
        51,
    );
    let s = golden_server();
    let layer = s
        .add_compute_layer(Arc::new(
            HotspotCompute::new(&pts, window(), 6, 20.0, HotspotStat::GiStar)
                .expect("hotspot compute"),
        ))
        .expect("layer");
    let tile = s.get_tile(layer, 1, 0, 1).expect("tile");
    let actual = digest_f64(tile.grid.values());
    check("golden_served_gi_star_overlay", actual);
    assert_eq!(actual, GOLDEN, "Gi* tile bits drifted: {actual:#018x}");
}

#[test]
fn golden_served_lisa_overlay() {
    const GOLDEN: u64 = 0x140e351c217f9079;
    let pts = data::gaussian_mixture(
        300,
        &[Hotspot {
            center: Point::new(65.0, 25.0),
            sigma: 9.0,
            weight: 1.0,
        }],
        window(),
        57,
    );
    let s = golden_server();
    let layer = s
        .add_compute_layer(Arc::new(
            HotspotCompute::new(
                &pts,
                window(),
                6,
                20.0,
                HotspotStat::Lisa {
                    permutations: 99,
                    seed: 13,
                },
            )
            .expect("hotspot compute"),
        ))
        .expect("layer");
    let tile = s.get_tile(layer, 1, 1, 1).expect("tile");
    let actual = digest_f64(tile.grid.values());
    check("golden_served_lisa_overlay", actual);
    assert_eq!(actual, GOLDEN, "LISA tile bits drifted: {actual:#018x}");
}
