//! Cross-method K-function consistency: every accelerated evaluation
//! must equal the naive Definition 2 count exactly (these methods are
//! all exact — only their costs differ).

use lsga::prelude::*;
use lsga::{data, dist, kfunc};

fn workload(n: usize) -> (Vec<Point>, BBox) {
    let window = BBox::new(0.0, 0.0, 120.0, 120.0);
    let hotspots = [
        Hotspot {
            center: Point::new(30.0, 30.0),
            sigma: 4.0,
            weight: 1.0,
        },
        Hotspot {
            center: Point::new(85.0, 70.0),
            sigma: 9.0,
            weight: 1.0,
        },
    ];
    (data::gaussian_mixture(n, &hotspots, window, 77), window)
}

#[test]
fn all_planar_methods_agree_exactly() {
    let (points, _) = workload(700);
    for cfg in [
        KConfig {
            include_self: false,
        },
        KConfig { include_self: true },
    ] {
        for s in [0.5, 3.0, 12.0, 60.0] {
            let want = kfunc::naive_k(&points, s, cfg);
            assert_eq!(kfunc::grid_k(&points, s, cfg), want, "grid s={s}");
            assert_eq!(kfunc::kd_tree_k(&points, s, cfg), want, "kd s={s}");
            assert_eq!(kfunc::ball_tree_k(&points, s, cfg), want, "ball s={s}");
            assert_eq!(kfunc::parallel_k(&points, s, cfg, 4), want, "par s={s}");
            assert_eq!(
                kfunc::histogram_k_all(&points, &[s], cfg)[0],
                want,
                "hist s={s}"
            );
            let (d, _) =
                dist::distributed_k(&points, s, cfg, 4, dist::PartitionStrategy::BalancedKd);
            assert_eq!(d, want, "dist s={s}");
        }
    }
}

#[test]
fn histogram_serves_whole_plot_consistently() {
    let (points, _) = workload(500);
    let cfg = KConfig::default();
    let thresholds: Vec<f64> = (1..=15).map(|i| i as f64).collect();
    let all = kfunc::histogram_k_all(&points, &thresholds, cfg);
    for (t, got) in thresholds.iter().zip(&all) {
        assert_eq!(*got, kfunc::naive_k(&points, *t, cfg));
    }
}

#[test]
fn plot_classifies_the_three_regimes() {
    let window = BBox::new(0.0, 0.0, 100.0, 100.0);
    let thresholds: Vec<f64> = (1..=8).map(|i| i as f64).collect();
    let cfg = KConfig::default();

    let clustered = data::gaussian_mixture(
        300,
        &[Hotspot {
            center: Point::new(50.0, 50.0),
            sigma: 3.0,
            weight: 1.0,
        }],
        window,
        1,
    );
    let plot = kfunc::k_function_plot(&clustered, window, &thresholds, 20, 9, cfg, 4);
    assert!(plot
        .regimes()
        .iter()
        .take(5)
        .all(|r| *r == Regime::Clustered));

    let dispersed = data::hardcore_points(300, 4.5, window, 2);
    let plot = kfunc::k_function_plot(&dispersed, window, &thresholds, 20, 10, cfg, 4);
    assert_eq!(plot.regimes()[3], Regime::Dispersed); // s = 4 < hard core

    let random = data::uniform_points(300, window, 3);
    let plot = kfunc::k_function_plot(&random, window, &thresholds, 40, 11, cfg, 4);
    let inside = plot
        .regimes()
        .iter()
        .filter(|r| **r == Regime::Random)
        .count();
    assert!(inside >= thresholds.len() - 1, "{:?}", plot.regimes());
}

#[test]
fn ripley_normalization_matches_csr_theory() {
    // Under CSR, E[K_ripley(s)] = pi s^2. Check the normalized estimate
    // is in the right ballpark (no edge correction, so expect a modest
    // downward bias).
    let window = BBox::new(0.0, 0.0, 100.0, 100.0);
    let points = data::uniform_points(3000, window, 99);
    let s = 5.0;
    let count = kfunc::grid_k(&points, s, KConfig::default());
    let k_hat = kfunc::ripley_normalization(count, points.len(), window.area());
    let theory = std::f64::consts::PI * s * s;
    assert!(
        k_hat > 0.6 * theory && k_hat < 1.2 * theory,
        "K^ = {k_hat}, theory {theory}"
    );
}

#[test]
fn spatiotemporal_consistency_and_limits() {
    let window = BBox::new(0.0, 0.0, 100.0, 100.0);
    let points = data::uniform_timed_points(250, window, 0.0, 50.0, 5);
    let cfg = KConfig::default();
    let ss = [3.0, 8.0, 20.0];
    let ts = [2.0, 10.0, 30.0];
    assert_eq!(
        kfunc::st_k_grid(&points, &ss, &ts, cfg),
        kfunc::st_k_naive(&points, &ss, &ts, cfg)
    );
    // t -> infinity recovers the planar K.
    let planar: Vec<Point> = points.iter().map(|p| p.point).collect();
    let st = kfunc::st_k_grid(&points, &[8.0], &[1e12], cfg);
    assert_eq!(st[0], kfunc::naive_k(&planar, 8.0, cfg));
}
