//! Chaos suite: deterministic fault injection and recovery.
//!
//! The headline invariant (DESIGN.md §3): **any recoverable fault
//! schedule yields results bit-identical to the fault-free run**, for
//! every partition strategy and worker count. Non-recoverable schedules
//! must degrade gracefully — a structured partial result with an exact
//! coverage report, never a panic.
//!
//! Run under `LSGA_THREADS=1` and `LSGA_THREADS=8` in CI: the schedule
//! is planned sequentially and tasks are pure, so thread count must not
//! change a single bit.

use lsga::core::{BBox, Epanechnikov, GridSpec, LsgaError, Point};
use lsga::dist::partition::assign_owners;
use lsga::dist::{
    distributed_k, distributed_kdv, make_tiles, partition_spec_for_k, supervised_k, supervised_kdv,
    FaultKind, FaultPlan, PartitionStrategy, RetryPolicy,
};
use lsga::kfunc::KConfig;
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn scatter(n: usize, seed: u64) -> Vec<Point> {
    // Deterministic pseudo-random points in the [0, 100]² window.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point::new(next() * 100.0, next() * 100.0))
        .collect()
}

fn spec() -> GridSpec {
    GridSpec::new(BBox::new(0.0, 0.0, 100.0, 100.0), 24, 24)
}

fn strategy_of(kd: bool) -> PartitionStrategy {
    if kd {
        PartitionStrategy::BalancedKd
    } else {
        PartitionStrategy::UniformBands
    }
}

/// Brute-force contribution of one K-function tile: owned points of
/// `tile` counted against the full set (self-matches included — with
/// `include_self` that is exactly the tile's share of the total).
fn k_tile_contribution(
    pts: &[Point],
    workers: usize,
    strat: PartitionStrategy,
    tile: u32,
    s: f64,
) -> u64 {
    let spec = partition_spec_for_k(pts);
    let tiles = make_tiles(&spec, pts, workers.max(1), strat);
    let owners = assign_owners(&spec, &tiles, pts);
    let mut count = 0u64;
    for (p, o) in pts.iter().zip(&owners) {
        if *o != tile {
            continue;
        }
        for q in pts {
            if p.dist_sq(q) <= s * s {
                count += 1;
            }
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Headline property (KDV): a seeded recoverable plan — stragglers,
    /// dropped shipments, transient errors, but no crashes — always
    /// completes and the raster is bit-identical to the fault-free run.
    #[test]
    fn recoverable_kdv_is_bit_identical(
        seed in any::<u64>(),
        n_faults in 0usize..12,
        widx in 0usize..WORKER_COUNTS.len(),
        kd in any::<bool>(),
        b in 2.0f64..20.0,
    ) {
        let workers = WORKER_COUNTS[widx];
        let strat = strategy_of(kd);
        let pts = scatter(120, seed);
        let kernel = Epanechnikov::new(b);
        let (reference, base) = distributed_kdv(&pts, spec(), kernel, 1e-9, workers, strat);
        let plan = FaultPlan::seeded_recoverable(seed, workers, n_faults);
        let (partial, metrics) = supervised_kdv(
            &pts, spec(), kernel, 1e-9, workers, strat, &plan, &RetryPolicy::default(),
        ).unwrap();
        prop_assert!(partial.coverage.is_complete(), "plan {plan:?} did not recover");
        prop_assert_eq!(partial.coverage.fraction(), 1.0);
        for (a, r) in partial.grid.values().iter().zip(reference.values()) {
            prop_assert_eq!(a.to_bits(), r.to_bits());
        }
        // Recovery never loses the base shipment accounting.
        prop_assert_eq!(metrics.total_shipped(), base.total_shipped());
        prop_assert!(metrics.total_bytes() >= base.total_bytes());
        prop_assert_eq!(metrics.failed_tiles, 0);
        prop_assert_eq!(metrics.dead_workers, 0);
    }

    /// Headline property (K-function): same invariant for the pair count.
    #[test]
    fn recoverable_k_count_is_identical(
        seed in any::<u64>(),
        n_faults in 0usize..12,
        widx in 0usize..WORKER_COUNTS.len(),
        kd in any::<bool>(),
        s in 1.0f64..40.0,
        include_self in any::<bool>(),
    ) {
        let workers = WORKER_COUNTS[widx];
        let strat = strategy_of(kd);
        let pts = scatter(150, seed ^ 0xabcd);
        let cfg = KConfig { include_self };
        let (want, _) = distributed_k(&pts, s, cfg, workers, strat);
        let plan = FaultPlan::seeded_recoverable(seed, workers, n_faults);
        let (partial, metrics) = supervised_k(
            &pts, s, cfg, workers, strat, &plan, &RetryPolicy::default(),
        ).unwrap();
        prop_assert!(partial.coverage.is_complete());
        prop_assert_eq!(partial.count, want);
        prop_assert_eq!(metrics.failed_tiles, 0);
    }

    /// General seeded plans (crashes included): either the run recovers —
    /// then it is bit-identical — or it degrades to an exact partial:
    /// executed tiles match the reference bit-for-bit, abandoned tiles
    /// are zero, and the coverage report accounts for every tile.
    #[test]
    fn arbitrary_kdv_plans_never_panic_and_partials_are_exact(
        seed in any::<u64>(),
        n_faults in 0usize..16,
        widx in 0usize..WORKER_COUNTS.len(),
        kd in any::<bool>(),
    ) {
        let workers = WORKER_COUNTS[widx];
        let strat = strategy_of(kd);
        let pts = scatter(100, seed ^ 0x5eed);
        let kernel = Epanechnikov::new(8.0);
        let (reference, _) = distributed_kdv(&pts, spec(), kernel, 1e-9, workers, strat);
        let plan = FaultPlan::seeded(seed, workers, n_faults);
        let (partial, metrics) = supervised_kdv(
            &pts, spec(), kernel, 1e-9, workers, strat, &plan, &RetryPolicy::default(),
        ).unwrap();
        let cov = &partial.coverage;
        // Coverage arithmetic is exact.
        prop_assert_eq!(cov.executed_tiles + cov.abandoned.len(), cov.total_tiles);
        prop_assert_eq!(cov.failures.len(), cov.abandoned.len());
        prop_assert_eq!(metrics.failed_tiles, cov.abandoned.len());
        prop_assert!(cov.recovered_tiles <= cov.executed_tiles);
        prop_assert_eq!(metrics.recovered_tiles, cov.recovered_tiles);
        prop_assert!(cov.fraction() >= 0.0 && cov.fraction() <= 1.0);
        // Per-tile exactness: executed tiles carry the reference bits,
        // abandoned tiles stay zero.
        let tiles = make_tiles(&spec(), &pts, workers.max(1), strat);
        for (t, rect) in tiles.iter().enumerate() {
            let abandoned = cov.abandoned.contains(&t);
            for iy in rect.iy0..rect.iy1 {
                for ix in rect.ix0..rect.ix1 {
                    let got = partial.grid.at(ix, iy);
                    if abandoned {
                        prop_assert_eq!(got, 0.0);
                    } else {
                        prop_assert_eq!(got.to_bits(), reference.at(ix, iy).to_bits());
                    }
                }
            }
        }
        if cov.is_complete() {
            prop_assert_eq!(cov.executed_tiles, cov.total_tiles);
        }
    }

    /// General seeded plans for the K-function: the partial count equals
    /// the fault-free total minus exactly the abandoned tiles' brute-force
    /// contributions.
    #[test]
    fn arbitrary_k_plans_yield_exact_partial_counts(
        seed in any::<u64>(),
        n_faults in 0usize..16,
        widx in 0usize..WORKER_COUNTS.len(),
        kd in any::<bool>(),
    ) {
        let workers = WORKER_COUNTS[widx];
        let strat = strategy_of(kd);
        let pts = scatter(90, seed ^ 0x6bff);
        let s = 9.0;
        let cfg = KConfig { include_self: true };
        let (want, _) = distributed_k(&pts, s, cfg, workers, strat);
        let plan = FaultPlan::seeded(seed, workers, n_faults);
        let (partial, _) = supervised_k(
            &pts, s, cfg, workers, strat, &plan, &RetryPolicy::default(),
        ).unwrap();
        let mut missing = 0u64;
        for t in &partial.coverage.abandoned {
            missing += k_tile_contribution(&pts, workers, strat, *t as u32, s);
        }
        prop_assert_eq!(partial.count + missing, want);
    }

    /// Planning and execution are deterministic end to end: the same
    /// seeded plan replayed gives identical metrics, coverage, and bits.
    #[test]
    fn supervised_runs_replay_identically(
        seed in any::<u64>(),
        n_faults in 0usize..16,
        widx in 0usize..WORKER_COUNTS.len(),
    ) {
        let workers = WORKER_COUNTS[widx];
        let pts = scatter(80, seed);
        let kernel = Epanechnikov::new(6.0);
        let plan = FaultPlan::seeded(seed, workers, n_faults);
        let run = || supervised_kdv(
            &pts, spec(), kernel, 1e-9, workers,
            PartitionStrategy::BalancedKd, &plan, &RetryPolicy::default(),
        ).unwrap();
        let (pa, ma) = run();
        let (pb, mb) = run();
        prop_assert_eq!(pa.coverage, pb.coverage);
        prop_assert_eq!(pa.grid.values(), pb.grid.values());
        prop_assert_eq!(ma.total_retries(), mb.total_retries());
        prop_assert_eq!(ma.total_reshipped_bytes(), mb.total_reshipped_bytes());
        prop_assert_eq!(ma.sim_ticks, mb.sim_ticks);
        prop_assert_eq!(ma.dead_workers, mb.dead_workers);
    }
}

// ---------------------------------------------------------------------
// Directed scenarios: one per fault kind / interception point.
// ---------------------------------------------------------------------

fn run_kdv_with(
    plan: &FaultPlan,
    workers: usize,
) -> (lsga::dist::PartialKdv, lsga::dist::RunMetrics) {
    let pts = scatter(150, 7);
    supervised_kdv(
        &pts,
        spec(),
        Epanechnikov::new(9.0),
        1e-9,
        workers,
        PartitionStrategy::BalancedKd,
        plan,
        &RetryPolicy::default(),
    )
    .unwrap()
}

fn reference_kdv(workers: usize) -> lsga::core::DensityGrid {
    let pts = scatter(150, 7);
    distributed_kdv(
        &pts,
        spec(),
        Epanechnikov::new(9.0),
        1e-9,
        workers,
        PartitionStrategy::BalancedKd,
    )
    .0
}

fn assert_bits_equal(a: &lsga::core::DensityGrid, b: &lsga::core::DensityGrid) {
    for (x, y) in a.values().iter().zip(b.values()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn crash_before_task_recovers_on_survivor() {
    let plan = FaultPlan::none().with(1, 0, FaultKind::CrashBeforeTask);
    let (partial, metrics) = run_kdv_with(&plan, 4);
    assert!(partial.coverage.is_complete());
    assert_eq!(partial.coverage.recovered_tiles, 1);
    assert_eq!(metrics.dead_workers, 1);
    assert_eq!(metrics.total_retries(), 1);
    assert_eq!(metrics.total_timeouts(), 1);
    assert!(
        metrics.total_reshipped_bytes() > 0,
        "halo re-shipped to survivor"
    );
    assert_bits_equal(&partial.grid, &reference_kdv(4));
}

#[test]
fn crash_mid_task_discards_partial_output() {
    let plan = FaultPlan::none().with(0, 0, FaultKind::CrashMidTask);
    let (partial, metrics) = run_kdv_with(&plan, 3);
    assert!(partial.coverage.is_complete());
    assert_eq!(metrics.dead_workers, 1);
    assert_bits_equal(&partial.grid, &reference_kdv(3));
}

#[test]
fn dropped_halo_shipment_is_reshipped() {
    let plan = FaultPlan::none().with(2, 0, FaultKind::DropHaloShipment);
    let (partial, metrics) = run_kdv_with(&plan, 4);
    assert!(partial.coverage.is_complete());
    assert_eq!(metrics.dead_workers, 0, "a lost shipment kills nobody");
    assert_eq!(metrics.total_timeouts(), 1);
    let w = &metrics.workers[2];
    assert_eq!(
        w.reshipped_bytes, w.bytes_shipped,
        "same halo shipped twice"
    );
    assert_bits_equal(&partial.grid, &reference_kdv(4));
}

#[test]
fn straggler_within_deadline_is_latency_only() {
    let policy = RetryPolicy::default();
    let plan = FaultPlan::none().with(
        1,
        0,
        FaultKind::Straggle {
            ticks: policy.timeout_ticks,
        },
    );
    let (partial, metrics) = run_kdv_with(&plan, 4);
    assert!(partial.coverage.is_complete());
    assert_eq!(metrics.total_retries(), 0, "no retry, just slow");
    assert_eq!(metrics.recovered_tiles, 0);
    assert_eq!(
        metrics.sim_ticks, policy.timeout_ticks,
        "slowest tile dominates"
    );
    assert_bits_equal(&partial.grid, &reference_kdv(4));
}

#[test]
fn straggler_past_deadline_is_abandoned_and_retried() {
    let policy = RetryPolicy::default();
    let plan = FaultPlan::none().with(1, 0, FaultKind::Straggle { ticks: 10_000 });
    let (partial, metrics) = run_kdv_with(&plan, 4);
    assert!(partial.coverage.is_complete());
    assert_eq!(metrics.total_retries(), 1);
    assert_eq!(metrics.total_timeouts(), 1);
    assert_eq!(
        metrics.sim_ticks,
        policy.timeout_ticks + policy.backoff_after(0) + policy.task_ticks
    );
    assert_bits_equal(&partial.grid, &reference_kdv(4));
}

#[test]
fn transient_task_errors_back_off_and_recover() {
    let policy = RetryPolicy::default();
    let plan = FaultPlan::none()
        .with(0, 0, FaultKind::TaskError)
        .with(0, 1, FaultKind::TaskError);
    let (partial, metrics) = run_kdv_with(&plan, 2);
    assert!(partial.coverage.is_complete());
    assert_eq!(metrics.total_retries(), 2);
    // Two failed task runs, two backoffs (2 then 4 ticks), one success.
    assert_eq!(
        metrics.sim_ticks,
        2 * policy.task_ticks
            + policy.backoff_after(0)
            + policy.backoff_after(1)
            + policy.task_ticks
    );
    assert_bits_equal(&partial.grid, &reference_kdv(2));
}

#[test]
fn exhausted_retry_budget_degrades_to_partial() {
    let policy = RetryPolicy::default();
    let mut plan = FaultPlan::none();
    for attempt in 0..policy.max_attempts {
        plan.push(2, attempt, FaultKind::TaskError);
    }
    let (partial, metrics) = run_kdv_with(&plan, 4);
    let cov = &partial.coverage;
    assert!(!cov.is_complete());
    assert_eq!(cov.abandoned, vec![2]);
    assert_eq!(cov.executed_tiles, 3);
    assert_eq!(cov.total_tiles, 4);
    assert!(cov.fraction() < 1.0 && cov.fraction() > 0.0);
    assert_eq!(cov.failures.len(), 1);
    assert!(matches!(
        cov.failures[0],
        LsgaError::TaskFailed { tile: 2, .. }
    ));
    assert_eq!(metrics.failed_tiles, 1);
    // Executed tiles still carry the reference bits; tile 2 stays zero.
    let pts = scatter(150, 7);
    let tiles = make_tiles(&spec(), &pts, 4, PartitionStrategy::BalancedKd);
    let reference = reference_kdv(4);
    for (t, rect) in tiles.iter().enumerate() {
        for iy in rect.iy0..rect.iy1 {
            for ix in rect.ix0..rect.ix1 {
                if t == 2 {
                    assert_eq!(partial.grid.at(ix, iy), 0.0);
                } else {
                    assert_eq!(
                        partial.grid.at(ix, iy).to_bits(),
                        reference.at(ix, iy).to_bits()
                    );
                }
            }
        }
    }
}

#[test]
fn losing_every_worker_degrades_without_panicking() {
    // Two workers; tile 0's attempts kill both. Nothing survives to run
    // any tile: the run must still return, with full accounting.
    let plan = FaultPlan::none()
        .with(0, 0, FaultKind::CrashBeforeTask)
        .with(0, 1, FaultKind::CrashMidTask);
    let (partial, metrics) = run_kdv_with(&plan, 2);
    let cov = &partial.coverage;
    assert!(!cov.is_complete());
    assert_eq!(cov.abandoned, vec![0, 1]);
    assert_eq!(cov.executed_tiles, 0);
    assert_eq!(cov.fraction(), 0.0);
    assert_eq!(metrics.dead_workers, 2);
    assert!(partial.grid.values().iter().all(|v| *v == 0.0));
    // The coverage report names the terminal error of each tile.
    assert_eq!(cov.failures.len(), 2);
}

#[test]
fn recovery_metrics_reach_the_run_report() {
    let plan = FaultPlan::none()
        .with(0, 0, FaultKind::DropHaloShipment)
        .with(1, 0, FaultKind::CrashMidTask)
        .with(2, 0, FaultKind::Straggle { ticks: 999 });
    let (partial, metrics) = run_kdv_with(&plan, 4);
    assert!(partial.coverage.is_complete());
    assert_eq!(metrics.recovered_tiles, 3);
    assert_eq!(metrics.total_retries(), 3);
    assert_eq!(metrics.total_timeouts(), 3);
    assert_eq!(metrics.dead_workers, 1);
    assert!(metrics.sim_ticks > 0);
    assert!(metrics.total_reshipped_bytes() > 0);
    assert!(metrics.total_bytes() > metrics.total_shipped() as u64 * 16 - 1);
    // Per-worker attribution: faulted tiles carry their own retries.
    for t in [0usize, 1, 2] {
        assert_eq!(metrics.workers[t].retries, 1, "tile {t}");
    }
    assert_eq!(metrics.workers[3].retries, 0);
}

#[test]
fn k_function_supervised_matches_through_crashes() {
    let pts = scatter(200, 11);
    let cfg = KConfig { include_self: true };
    for workers in WORKER_COUNTS {
        let (want, _) = distributed_k(&pts, 12.0, cfg, workers, PartitionStrategy::UniformBands);
        let plan = FaultPlan::none().with(0, 0, FaultKind::CrashMidTask).with(
            workers.saturating_sub(1),
            0,
            FaultKind::DropHaloShipment,
        );
        let (partial, metrics) = supervised_k(
            &pts,
            12.0,
            cfg,
            workers,
            PartitionStrategy::UniformBands,
            &plan,
            &RetryPolicy::default(),
        )
        .unwrap();
        if partial.coverage.is_complete() {
            assert_eq!(partial.count, want, "workers={workers}");
        } else {
            // Single worker that crashes: nothing survives.
            assert_eq!(workers, 1);
            assert_eq!(partial.count, 0);
            assert_eq!(metrics.dead_workers, 1);
        }
    }
}

#[test]
fn invalid_inputs_are_structured_errors_not_panics() {
    // Regression tests for the unwrap/panic audit: worker-path input
    // problems surface as LsgaError, not as panics deep in the stack.
    let nan_pts = vec![Point::new(f64::NAN, 1.0)];
    assert!(matches!(
        supervised_kdv(
            &nan_pts,
            spec(),
            Epanechnikov::new(5.0),
            1e-9,
            2,
            PartitionStrategy::UniformBands,
            &FaultPlan::none(),
            &RetryPolicy::default(),
        ),
        Err(LsgaError::InvalidParameter { name: "points", .. })
    ));
    assert!(matches!(
        supervised_k(
            &nan_pts,
            5.0,
            KConfig::default(),
            2,
            PartitionStrategy::UniformBands,
            &FaultPlan::none(),
            &RetryPolicy::default(),
        ),
        Err(LsgaError::InvalidParameter { name: "points", .. })
    ));
    assert!(matches!(
        supervised_kdv(
            &scatter(10, 3),
            spec(),
            Epanechnikov::new(5.0),
            f64::NAN,
            2,
            PartitionStrategy::UniformBands,
            &FaultPlan::none(),
            &RetryPolicy::default(),
        ),
        Err(LsgaError::InvalidParameter {
            name: "tail_eps",
            ..
        })
    ));
    assert!(matches!(
        supervised_k(
            &scatter(10, 3),
            -1.0,
            KConfig::default(),
            2,
            PartitionStrategy::UniformBands,
            &FaultPlan::none(),
            &RetryPolicy::default(),
        ),
        Err(LsgaError::InvalidParameter { name: "s", .. })
    ));
    // Degenerate worker counts are clamped, not panicked on.
    let (grid, _) = distributed_kdv(
        &scatter(20, 3),
        spec(),
        Epanechnikov::new(5.0),
        1e-9,
        0,
        PartitionStrategy::BalancedKd,
    );
    assert!(grid.sum() > 0.0);
}

#[test]
fn empty_dataset_under_faults_is_trivially_complete() {
    let plan = FaultPlan::seeded(42, 4, 8);
    let (partial, metrics) = supervised_k(
        &[],
        5.0,
        KConfig::default(),
        4,
        PartitionStrategy::UniformBands,
        &plan,
        &RetryPolicy::default(),
    )
    .unwrap();
    assert_eq!(partial.count, 0);
    assert!(partial.coverage.is_complete());
    assert_eq!(metrics.total_bytes(), 0);
}
