//! Thread-count invariance of the `lsga-obs` work counters.
//!
//! The counters account for algorithmic work (pairs evaluated, cells
//! pruned, index nodes visited, solves), and every instrumented hot
//! path accumulates into per-chunk locals inside the same deterministic
//! decomposition the output computation uses. Integer adds commute, so
//! the drained totals must be **identical** for every `LSGA_THREADS` —
//! the telemetry obeys the same discipline `tests/parallel_determinism.rs`
//! enforces on the results themselves. This suite runs a cross-crate
//! workload at 1 and 8 threads and diffs the full counter tables.

use lsga::core::par::Threads;
use lsga::core::{BBox, Epanechnikov, GridSpec, Point, PolyKernel};
use lsga::interp::{VariogramModel, VariogramModelKind};
use lsga::kfunc::KConfig;
use lsga::prelude::KernelKind;
use lsga::stats::SpatialWeights;
use lsga::{data, dist, interp, kdv, kfunc, obs, stats};
use std::sync::Mutex;

// The obs registry is process-global; every test that enables/drains it
// serializes here.
static LOCK: Mutex<()> = Mutex::new(());

fn window() -> BBox {
    BBox::new(0.0, 0.0, 100.0, 100.0)
}

type CounterTable = Vec<(&'static str, u64)>;
type HistTotals = Vec<(&'static str, u64, u64)>;

/// Run the instrumented cross-crate workload at a given thread count
/// and return the drained counter table and histogram totals.
fn workload_counters(t: usize) -> (CounterTable, HistTotals) {
    let threads = Threads::exact(t);
    obs::reset();
    obs::enable();

    // KDV: naive per-row pairs + grid-pruned pairs/pruned cells.
    let pts = data::uniform_points(600, window(), 11);
    let spec = GridSpec::new(window(), 32, 20);
    let _ = kdv::parallel_kdv_threads(&pts, spec, Epanechnikov::new(9.0), 1e-9, threads);
    let tpts = data::uniform_timed_points(250, window(), 0.0, 50.0, 3);
    let kt = PolyKernel::new(KernelKind::Quartic, 8.0).unwrap();
    let _ = kdv::stkdv_sweep_threads(
        &tpts,
        GridSpec::new(window(), 10, 10),
        0.0,
        50.0,
        8,
        Epanechnikov::new(12.0),
        kt,
        1e-9,
        threads,
    );

    // K-function: histogram pair sweep + index-backed range counts.
    let _ = kfunc::histogram_k_all_threads(&pts, &[2.0, 8.0, 20.0], KConfig::default(), threads);
    let _ = kfunc::parallel_k_threads(&pts, 8.0, KConfig::default(), threads);

    // Stats: weight-matrix sweeps + DBSCAN ε-queries.
    let k = 8;
    let wpts: Vec<Point> = (0..k * k)
        .map(|i| Point::new((i % k) as f64, (i / k) as f64))
        .collect();
    let w = SpatialWeights::distance_band(&wpts, 1.0);
    let values: Vec<f64> = (0..k * k).map(|i| ((i * 7) % 13) as f64).collect();
    let _ = stats::morans_i_threads(&values, &w, 49, 5, threads);
    let _ = stats::general_g_threads(&values, &w, 49, 5, threads);
    let _ = stats::dbscan_threads(&pts, 3.0, 5, threads);

    // Interpolation: IDW pair scans + kriging solves.
    let samples: Vec<(Point, f64)> = data::uniform_points(80, window(), 13)
        .into_iter()
        .map(|p| (p, 3.0 + 0.08 * p.x - 0.05 * p.y))
        .collect();
    let ispec = GridSpec::new(window(), 12, 10);
    let _ = interp::idw_naive_threads(&samples, ispec, 2.0, threads);
    let _ = interp::idw_knn_threads(&samples, ispec, 2.0, 8, threads);
    let _ = interp::idw_radius_threads(&samples, ispec, 2.0, 15.0, threads);
    let model = VariogramModel {
        kind: VariogramModelKind::Spherical,
        nugget: 0.1,
        psill: 8.0,
        range: 25.0,
    };
    let _ = interp::ordinary_kriging_threads(&samples, ispec, &model, 10, threads);

    // Distributed recovery: the schedule simulation is sequential, so
    // its counters are trivially invariant — included to pin that the
    // wiring stays on this path.
    let plan = dist::FaultPlan::none()
        .with(1, 0, dist::FaultKind::CrashMidTask)
        .with(2, 0, dist::FaultKind::DropHaloShipment);
    let _ = dist::plan_schedule(&[40, 40, 40, 40], &plan, &dist::RetryPolicy::default());

    let snap = obs::drain();
    obs::disable();
    let hists = snap
        .histograms()
        .iter()
        .map(|h| (h.name, h.count, h.sum))
        .collect();
    (snap.counters().to_vec(), hists)
}

#[test]
fn counters_identical_across_thread_counts() {
    let _g = LOCK.lock().unwrap();
    let (c1, h1) = workload_counters(1);
    let (c8, h8) = workload_counters(8);
    assert_eq!(c1, c8, "counter tables diverged between 1 and 8 threads");
    assert_eq!(h1, h8, "histogram totals diverged between 1 and 8 threads");

    // The workload must actually exercise every counter family.
    let get = |name: &str| {
        c1.iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("unknown counter {name}"))
    };
    for name in [
        "kdv.pairs_evaluated",
        "kfunc.pairs_evaluated",
        "interp.pairs_evaluated",
        "interp.kriging_solves",
        "stats.pairs_evaluated",
        "stats.neighbors_gathered",
        "index.entries_scanned",
        "dist.retries",
        "dist.halo_reshipments",
        "dist.reshipped_bytes",
    ] {
        assert!(get(name) > 0, "workload never bumped {name}");
    }
}

#[test]
fn kdv_pair_counter_matches_complexity_model() {
    // The naive KDV pair counter must equal exactly X·Y·n — the O(X·Y·n)
    // cost the paper quotes, audited from the run's own telemetry.
    let _g = LOCK.lock().unwrap();
    obs::reset();
    obs::enable();
    let pts = data::uniform_points(321, window(), 17);
    let spec = GridSpec::new(window(), 23, 19);
    let _ = kdv::naive_kdv(&pts, spec, Epanechnikov::new(9.0));
    let snap = obs::drain();
    obs::disable();
    assert_eq!(snap.counter("kdv.pairs_evaluated"), (23 * 19 * 321) as u64);
}

#[test]
fn pruned_kdv_accounts_pairs_plus_pruned_cells() {
    // Grid-pruned KDV must report strictly fewer pairs than the naive
    // bound and a non-zero pruned-cell count on clustered data.
    let _g = LOCK.lock().unwrap();
    let pts = data::gaussian_mixture(
        500,
        &[lsga::prelude::Hotspot {
            center: Point::new(25.0, 25.0),
            sigma: 4.0,
            weight: 1.0,
        }],
        window(),
        29,
    );
    let spec = GridSpec::new(window(), 40, 40);
    obs::reset();
    obs::enable();
    let _ = kdv::grid_pruned_kdv(&pts, spec, Epanechnikov::new(6.0), 1e-9);
    let snap = obs::drain();
    obs::disable();
    let pairs = snap.counter("kdv.pairs_evaluated");
    let pruned = snap.counter("kdv.cells_pruned");
    assert!(pairs > 0);
    assert!(pruned > 0, "clustered data must prune empty regions");
    assert!(
        pairs < (40 * 40 * 500) as u64,
        "pruning must beat the naive O(X·Y·n) bound: {pairs}"
    );
}

#[test]
fn dist_counters_mirror_schedule_outcomes() {
    let _g = LOCK.lock().unwrap();
    obs::reset();
    obs::enable();
    let plan = dist::FaultPlan::none()
        .with(0, 0, dist::FaultKind::CrashMidTask)
        .with(2, 0, dist::FaultKind::DropHaloShipment);
    let policy = dist::RetryPolicy::default();
    let schedule = dist::plan_schedule(&[10, 20, 30], &plan, &policy);
    let snap = obs::drain();
    obs::disable();
    let sum = |f: fn(&dist::TileOutcome) -> u64| schedule.tiles.iter().map(f).sum::<u64>();
    assert_eq!(snap.counter("dist.retries"), sum(|o| o.retries as u64));
    assert_eq!(snap.counter("dist.timeouts"), sum(|o| o.timeouts as u64));
    assert_eq!(
        snap.counter("dist.halo_reshipments"),
        sum(|o| o.reshipments as u64)
    );
    assert_eq!(
        snap.counter("dist.reshipped_bytes"),
        sum(|o| o.reshipped_bytes)
    );
    // One instant marker per re-shipment.
    let markers = snap
        .events()
        .iter()
        .filter(|e| e.name == "dist.reshipment")
        .count() as u64;
    assert_eq!(markers, sum(|o| o.reshipments as u64));
}

#[test]
fn disabled_collector_records_nothing_across_the_workspace() {
    let _g = LOCK.lock().unwrap();
    obs::reset();
    obs::disable();
    let pts = data::uniform_points(200, window(), 3);
    let spec = GridSpec::new(window(), 10, 10);
    let _ = kdv::parallel_kdv_threads(&pts, spec, Epanechnikov::new(9.0), 1e-9, Threads::exact(4));
    let _ = kfunc::histogram_k_all(&pts, &[5.0], KConfig::default());
    let snap = obs::drain();
    assert!(snap.is_empty(), "disabled collector must stay silent");
}

#[test]
fn ingest_tables_identical_across_server_pool_widths() {
    // The ingest counters account batches, appended points, and
    // compaction rewrites. Compaction is a deterministic function of
    // the committed batch sequence and its CSR merge is filled on the
    // `par` pool with a fixed decomposition — so for a single-writer
    // batch sequence the whole `ingest.*` table (and the segment-count
    // histogram) must not depend on the server's pool width.
    let _g = LOCK.lock().unwrap();
    let run = |t: usize| {
        use lsga::serve::{TileServer, TileServerConfig};
        obs::reset();
        obs::enable();
        let s = TileServer::new(TileServerConfig {
            tile_px: 16,
            max_zoom: 3,
            shards: 2,
            byte_budget: 1 << 20,
            threads: Threads::exact(t),
            ..TileServerConfig::default()
        });
        let layer = s
            .add_layer(
                data::uniform_points(300, window(), 19),
                window(),
                KernelKind::Quartic.with_bandwidth(8.0),
                1e-9,
            )
            .expect("layer");
        for b in 0..24u64 {
            let batch = data::uniform_points(5 + (b as usize % 9), window(), 100 + b);
            s.insert_points(layer, &batch).expect("insert");
            let _ = s.get_tile(layer, 1, (b % 2) as u32, ((b / 2) % 2) as u32);
        }
        let snap = obs::drain();
        obs::disable();
        let ingest: Vec<(&'static str, u64)> = snap
            .counters()
            .iter()
            .copied()
            .filter(|(n, _)| n.starts_with("ingest."))
            .collect();
        let hist = snap
            .histograms()
            .iter()
            .find(|h| h.name == "ingest.segment_count")
            .map(|h| (h.count, h.sum))
            .expect("segment-count histogram recorded");
        (ingest, hist)
    };
    let (c1, h1) = run(1);
    let (c8, h8) = run(8);
    assert_eq!(c1, c8, "ingest counter tables diverged across pool widths");
    assert_eq!(
        h1, h8,
        "segment-count histogram diverged across pool widths"
    );

    // And the workload genuinely exercised the whole family.
    let get = |name: &str| {
        c1.iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("unknown counter {name}"))
    };
    assert_eq!(get("ingest.segments_created"), 24);
    assert_eq!(
        get("ingest.points_appended"),
        (0..24u64).map(|b| 5 + (b % 9)).sum::<u64>()
    );
    assert!(get("ingest.segments_merged") >= 2, "compaction never ran");
    assert!(get("ingest.merge_bytes") > 0);
}

#[test]
fn per_kind_serve_tables_identical_across_server_pool_widths() {
    // Every layer kind accounts its computes and invalidations under a
    // `{kind=…}`-labelled counter. Tile computes happen inside the
    // single-flight slot and invalidation walks the cache under the
    // shard lock, so for a sequential request/insert sequence the full
    // per-kind table is a function of that sequence alone and must not
    // depend on the server's pool width.
    let _g = LOCK.lock().unwrap();
    let run = |t: usize| {
        use lsga::network::{self, Lixels};
        use lsga::serve::{
            HotspotCompute, HotspotStat, NkdvCompute, StkdvCompute, TileServer, TileServerConfig,
        };
        use std::sync::Arc;
        obs::reset();
        obs::enable();
        let s = TileServer::new(TileServerConfig {
            tile_px: 8,
            max_zoom: 2,
            shards: 2,
            byte_budget: 1 << 20,
            threads: Threads::exact(t),
            ..TileServerConfig::default()
        });
        let kdv_layer = s
            .add_layer(
                data::uniform_points(120, window(), 31),
                window(),
                KernelKind::Quartic.with_bandwidth(10.0),
                1e-9,
            )
            .expect("kdv layer");
        let tpts = data::uniform_timed_points(100, window(), 0.0, 40.0, 37);
        let st = s
            .add_compute_layer(Arc::new(
                StkdvCompute::new(
                    &tpts,
                    window(),
                    KernelKind::Epanechnikov.with_bandwidth(12.0),
                    PolyKernel::new(KernelKind::Quartic, 8.0).unwrap(),
                    0.0,
                    40.0,
                    4,
                    1e-9,
                )
                .expect("stkdv compute"),
            ))
            .expect("stkdv layer");
        let net = Arc::new(network::grid_network(5, 5, 25.0));
        let lixels = Arc::new(Lixels::build(&net, 6.0));
        let events = network::sample_on_network(&net, 60, 41);
        let nk = s
            .add_compute_layer(Arc::new(
                NkdvCompute::new(
                    net,
                    lixels,
                    &events,
                    KernelKind::Quartic.with_bandwidth(15.0),
                )
                .expect("nkdv compute"),
            ))
            .expect("nkdv layer");
        let hot = s
            .add_compute_layer(Arc::new(
                HotspotCompute::new(
                    &data::uniform_points(150, window(), 43),
                    window(),
                    5,
                    25.0,
                    HotspotStat::GiStar,
                )
                .expect("hotspot compute"),
            ))
            .expect("hotspot layer");

        // Cold sweep: every get is one compute accounted to its kind.
        for (x, y) in [(0, 0), (1, 1)] {
            for &l in &[kdv_layer, nk, hot] {
                let _ = s.get_tile(l, 1, x, y).expect("cold get");
            }
            for bin in 0..2u32 {
                let _ = s.get_tile_binned(st, 1, x, y, bin).expect("cold stkdv get");
            }
        }
        // Inserts dirty cached tiles of their own layer only, so each
        // kind's invalidation counter moves exactly for its own batch.
        s.insert_points(kdv_layer, &data::uniform_points(5, window(), 59))
            .expect("kdv insert");
        s.insert_timed_points(st, &data::uniform_timed_points(5, window(), 0.0, 40.0, 61))
            .expect("stkdv insert");
        s.insert_points(nk, &[Point::new(30.0, 30.0)])
            .expect("nkdv insert");
        s.insert_points(hot, &data::uniform_points(5, window(), 67))
            .expect("hotspot insert");
        // Warm re-gets recompute exactly the invalidated entries.
        for &l in &[kdv_layer, nk, hot] {
            let _ = s.get_tile(l, 1, 0, 0).expect("warm get");
        }
        let _ = s.get_tile_binned(st, 1, 0, 0, 1).expect("warm stkdv get");

        let snap = obs::drain();
        obs::disable();
        let table: CounterTable = snap
            .counters()
            .iter()
            .copied()
            .filter(|(n, _)| n.contains("{kind="))
            .collect();
        table
    };
    let t1 = run(1);
    let t8 = run(8);
    assert_eq!(t1, t8, "per-kind serve tables diverged across pool widths");

    let get = |name: &str| {
        t1.iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("counter {name} missing from the per-kind table"))
    };
    for kind in ["kdv", "stkdv", "nkdv", "hotspot"] {
        assert!(
            get(&format!("serve.tiles_computed{{kind={kind}}}")) > 0,
            "workload never computed a {kind} tile"
        );
        assert!(
            get(&format!("serve.tiles_invalidated{{kind={kind}}}")) > 0,
            "workload never invalidated a {kind} tile"
        );
    }
}

#[test]
fn tier_tables_identical_across_server_pool_widths() {
    // The admission model is a serialized-queue estimate — `(inflight +
    // 1) × EWMA` — deliberately *not* divided by the pool width, so for
    // a sequential request sequence with a pinned compute estimate the
    // degrade decisions, the whole `serve.*` counter table, and the
    // `serve.queue_wait` histogram must not depend on `Threads::exact`.
    let _g = LOCK.lock().unwrap();
    let run = |t: usize| {
        use lsga::serve::{ApproxMode, QualityPolicy, TileServer, TileServerConfig};
        use std::time::Duration;
        obs::reset();
        obs::enable();
        let s = TileServer::new(TileServerConfig {
            tile_px: 16,
            max_zoom: 3,
            shards: 2,
            byte_budget: 1 << 20,
            threads: Threads::exact(t),
            ..TileServerConfig::default()
        });
        let layer = s
            .add_layer(
                data::uniform_points(400, window(), 23),
                window(),
                KernelKind::Quartic.with_bandwidth(8.0),
                1e-9,
            )
            .expect("layer");
        // Pin the EWMA: with a 1 ms estimate and a zero deadline every
        // cold policy request degrades; the generous-deadline policy
        // always admits. Sequential requests keep inflight at 0. The
        // estimate is re-pinned before every request because admitted
        // exact computes fold their *measured* (pool-width-dependent)
        // wall time into the EWMA, and the queue-wait histogram must
        // stay a function of the request sequence alone.
        let pin = || s.set_compute_estimate(Duration::from_millis(1));
        let degrade = QualityPolicy::new(
            Duration::ZERO,
            ApproxMode::Sampling {
                eps: 0.2,
                delta: 0.1,
                seed: 3,
            },
        )
        .unwrap();
        let admit = QualityPolicy::new(
            Duration::from_secs(60),
            ApproxMode::Sampling {
                eps: 0.2,
                delta: 0.1,
                seed: 3,
            },
        )
        .unwrap();
        for i in 0..12u32 {
            let (x, y) = (i % 4, (i / 4) % 4);
            let p = if i % 3 == 0 { &admit } else { &degrade };
            pin();
            let _ = s
                .get_tile_with_policy(layer, 2, x, y, p)
                .expect("policy get");
        }
        // Settle the refinement queue, then revisit a prefix: every
        // entry is exact by now, so the revisits are plain hits and the
        // table stays a deterministic function of the request sequence.
        s.drain_refinements();
        for i in 0..6u32 {
            pin();
            let _ = s
                .get_tile_with_policy(layer, 2, i % 4, (i / 4) % 4, &degrade)
                .expect("revisit");
        }
        s.drain_refinements();
        let snap = obs::drain();
        obs::disable();
        let serve: Vec<(&'static str, u64)> = snap
            .counters()
            .iter()
            .copied()
            .filter(|(n, _)| n.starts_with("serve."))
            .collect();
        let hist = snap
            .histograms()
            .iter()
            .find(|h| h.name == "serve.queue_wait")
            .map(|h| (h.count, h.sum))
            .expect("queue-wait histogram recorded");
        (serve, hist)
    };
    let (c1, h1) = run(1);
    let (c8, h8) = run(8);
    assert_eq!(c1, c8, "serve counter tables diverged across pool widths");
    assert_eq!(h1, h8, "queue-wait histogram diverged across pool widths");

    // The workload exercised every leg of the tier machinery.
    let get = |name: &str| {
        c1.iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("unknown counter {name}"))
    };
    assert_eq!(
        get("serve.degraded_tiles"),
        8,
        "8 of 12 cold requests degrade"
    );
    assert_eq!(
        get("serve.refined_tiles"),
        8,
        "every committed degraded entry is refined"
    );
    assert_eq!(get("serve.refine_discards"), 0);
    assert_eq!(get("serve.stale_discards"), 0);
    assert_eq!(get("serve.cache_misses"), 12);
    assert_eq!(
        get("serve.cache_hits"),
        6,
        "revisits must hit exact entries"
    );
    assert_eq!(
        get("serve.tiles_computed"),
        12,
        "4 admitted + 8 refinement exact computes"
    );
    assert_eq!(h1.0, 12, "one queue-wait sample per admission decision");
}
