//! Ingest coherence for the tiered segment stack.
//!
//! `insert_points` no longer rebuilds a layer's index — each batch
//! becomes an immutable segment and size-tiered compaction rewrites
//! suffixes of the stack as CSR merges. None of that machinery is
//! allowed to move a served bit: a tile computed against any segment
//! stack must be **bit-identical** to [`compute_tile_direct`] over the
//! monolithic rebuild of the same prefix of batches. This suite drives
//! randomized insert/get interleavings at pool widths 1 and 8 against
//! that oracle, pins the nasty interleavings directly (compaction
//! completing under a mid-flight reader; two writers racing the
//! generation CAS), and checks the tier policy's logarithmic depth
//! bound from the outside through `segment_count`.
//!
//! The directed tests also certify the ingest accounting: a CAS loser
//! must *re-stamp* its already-built segment (`ingest.segments_created`
//! stays at one per batch — no rebuild), and a compaction completing
//! under a reader must surface as a stale discard plus a merge, never
//! as wrong bits.

use lsga::core::par::Threads;
use lsga::prelude::*;
use lsga::serve::{compute_tile_direct, TileCoord, TileServer, TileServerConfig};
use lsga::{data, obs};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

// The obs registry is process-global, and every server op bumps ingest
// counters once collection is enabled — so *all* tests in this binary
// serialize here, not just the ones that drain.
static LOCK: Mutex<()> = Mutex::new(());

const TILE_PX: usize = 8;
const MAX_ZOOM: u8 = 3;
const TAIL_EPS: f64 = 1e-6;

fn window() -> BBox {
    BBox::new(0.0, 0.0, 100.0, 100.0)
}

fn scatter(n: usize, salt: u64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let f = (i as f64) + (salt as f64) * 0.618;
            Point::new(
                50.0 + (f * 0.831).sin() * 49.0,
                50.0 + (f * 0.557).cos() * 49.0,
            )
        })
        .collect()
}

fn server(threads: usize) -> TileServer {
    TileServer::new(TileServerConfig {
        tile_px: TILE_PX,
        max_zoom: MAX_ZOOM,
        shards: 2,
        byte_budget: 1 << 20,
        threads: Threads::exact(threads),
        ..TileServerConfig::default()
    })
}

fn assert_tile_matches(
    served: &lsga::serve::Tile,
    mirror: &[Point],
    kernel: AnyKernel,
    c: TileCoord,
) -> Result<(), TestCaseError> {
    let direct = compute_tile_direct(mirror, &window(), kernel, TAIL_EPS, TILE_PX, c);
    for (i, (a, b)) in served.grid.values().iter().zip(direct.values()).enumerate() {
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "pixel {} of tile ({},{},{}) diverged from monolithic rebuild",
            i,
            c.z,
            c.x,
            c.y
        );
    }
    Ok(())
}

/// One randomized insert/get interleaving: the mirror accumulates the
/// same prefix of batches the server ingests, and every read is checked
/// against the monolithic-rebuild oracle over that prefix.
fn run_ingest_interleaving(
    threads: usize,
    kidx: usize,
    bandwidth: f64,
    n0: usize,
    ops: &[(u32, u32, u32, u32, u32)],
) -> Result<(), TestCaseError> {
    let kernel = KernelKind::ALL[kidx % KernelKind::ALL.len()].with_bandwidth(bandwidth);
    let mut mirror = scatter(n0, 7);
    let s = server(threads);
    let layer = s
        .add_layer(mirror.clone(), window(), kernel, TAIL_EPS)
        .expect("layer");

    for &(kind, z, xr, yr, n) in ops {
        match kind % 3 {
            // Insert a small batch; compaction decides for itself.
            0 => {
                let batch: Vec<Point> = (0..=(n % 6) as usize)
                    .map(|i| {
                        let f = f64::from(xr.wrapping_mul(31) ^ yr) + i as f64 * 0.43;
                        Point::new(
                            50.0 + (f * 0.389).sin() * 49.0,
                            50.0 + (f * 0.677).cos() * 49.0,
                        )
                    })
                    .collect();
                s.insert_points(layer, &batch).expect("insert");
                mirror.extend_from_slice(&batch);
                // The tier invariant caps the stack logarithmically.
                let depth = s.segment_count(layer).expect("depth");
                let bound = (mirror.len() as f64).log2() as usize + 2;
                prop_assert!(depth <= bound, "depth {depth} exceeds log bound {bound}");
            }
            // Single get, checked bit-for-bit.
            1 => {
                let z = (z % u32::from(MAX_ZOOM + 1)) as u8;
                let per = 1u32 << z;
                let c = TileCoord::new(z, xr % per, yr % per);
                let tile = s.get_tile(layer, c.z, c.x, c.y).expect("get");
                assert_tile_matches(&tile, &mirror, kernel, c)?;
            }
            // Batch get across zooms, every tile checked.
            _ => {
                let coords: Vec<TileCoord> = (0..3u32)
                    .map(|dz| {
                        let z = ((z + dz) % u32::from(MAX_ZOOM + 1)) as u8;
                        let per = 1u32 << z;
                        TileCoord::new(z, (xr + dz) % per, yr % per)
                    })
                    .collect();
                let tiles = s.get_tiles(layer, &coords).expect("get_tiles");
                for (tile, &c) in tiles.iter().zip(&coords) {
                    assert_tile_matches(tile, &mirror, kernel, c)?;
                }
            }
        }
    }

    // Final sweep over zooms 0..=1: the whole pyramid root must match
    // the full batch prefix after the interleaving settles.
    for zz in 0..=1u8 {
        for x in 0..(1u32 << zz) {
            for y in 0..(1u32 << zz) {
                let tile = s.get_tile(layer, zz, x, y).expect("final get");
                assert_tile_matches(&tile, &mirror, kernel, TileCoord::new(zz, x, y))?;
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    fn ingested_tiles_bit_identical_to_monolithic_rebuild(
        kidx in 0usize..7,
        bandwidth in 2.0f64..15.0,
        n0 in 1usize..80,
        ops in prop::collection::vec(
            (0u32..9, 0u32..8, 0u32..64, 0u32..64, 0u32..8),
            1..28,
        ),
    ) {
        let _g = LOCK.lock().unwrap();
        for threads in [1usize, 8] {
            run_ingest_interleaving(threads, kidx, bandwidth, n0, &ops)?;
        }
    }
}

#[test]
fn sustained_small_batches_keep_depth_logarithmic() {
    let _g = LOCK.lock().unwrap();
    for threads in [1usize, 8] {
        let kernel = KernelKind::Quartic.with_bandwidth(9.0);
        let mut pts = scatter(64, 2);
        let s = server(threads);
        let layer = s
            .add_layer(pts.clone(), window(), kernel, TAIL_EPS)
            .expect("layer");
        for b in 0..32u64 {
            let batch = scatter(8, 100 + b);
            s.insert_points(layer, &batch).expect("insert");
            pts.extend_from_slice(&batch);
            assert!(
                s.segment_count(layer).expect("depth") <= 7,
                "batch {b}: depth {} breached the tier bound",
                s.segment_count(layer).unwrap()
            );
        }
        for zz in 0..=1u8 {
            for x in 0..(1u32 << zz) {
                for y in 0..(1u32 << zz) {
                    let tile = s.get_tile(layer, zz, x, y).expect("get");
                    let direct = compute_tile_direct(
                        &pts,
                        &window(),
                        kernel,
                        TAIL_EPS,
                        TILE_PX,
                        TileCoord::new(zz, x, y),
                    );
                    for (a, b) in tile.grid.values().iter().zip(direct.values()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "threads {threads}");
                    }
                }
            }
        }
    }
}

#[test]
fn compaction_completing_under_reader_discards_stale_tile() {
    // Pin the interleaving the tier machinery makes possible: a leader
    // snapshots the stack, an insert lands *and compacts* while the
    // leader computes, and the leader's commit must notice the
    // generation bump — the pre-compaction bits are discarded and the
    // recompute serves the post-insert stack. The drained table then
    // certifies a real merge happened under the reader's feet.
    let _g = LOCK.lock().unwrap();
    obs::reset();
    obs::enable();
    let s = Arc::new(server(2));
    let kernel = KernelKind::Epanechnikov.with_bandwidth(8.0);
    let mut pts = data::uniform_points(64, window(), 23);
    let layer = s
        .add_layer(pts.clone(), window(), kernel, TAIL_EPS)
        .expect("layer");
    // Stack [64, 8]: the *next* batch of 8 will absorb its equal-sized
    // sibling (8 ≤ 2·8) and merge — deterministic tier arithmetic.
    let first = scatter(8, 51);
    s.insert_points(layer, &first).expect("first insert");
    pts.extend_from_slice(&first);
    assert_eq!(s.segment_count(layer).unwrap(), 2);

    // Hold the first leader mid-flight (snapshot taken, nothing
    // computed); later invocations pass through for the recompute.
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let once = Arc::new(AtomicBool::new(true));
    let (entered_h, release_h, once_h) = (
        Arc::clone(&entered),
        Arc::clone(&release),
        Arc::clone(&once),
    );
    s.set_compute_hook(Some(Arc::new(move |_key| {
        if once_h.swap(false, Ordering::SeqCst) {
            entered_h.store(true, Ordering::SeqCst);
            while !release_h.load(Ordering::SeqCst) {
                thread::yield_now();
            }
        }
    })));

    let reader = {
        let s = Arc::clone(&s);
        thread::spawn(move || s.get_tile(0, 1, 0, 0).expect("get"))
    };
    while !entered.load(Ordering::SeqCst) {
        thread::yield_now();
    }
    // Leader parked on the [64, 8] snapshot: land the merging insert.
    let second = scatter(8, 52);
    s.insert_points(layer, &second).expect("second insert");
    pts.extend_from_slice(&second);
    assert_eq!(s.segment_count(layer).unwrap(), 2, "suffix [8,8] merged");
    release.store(true, Ordering::SeqCst);

    let tile = reader.join().expect("reader panicked");
    s.set_compute_hook(None);
    let direct = compute_tile_direct(
        &pts,
        &window(),
        kernel,
        TAIL_EPS,
        TILE_PX,
        TileCoord::new(1, 0, 0),
    );
    for (i, (a, b)) in tile.grid.values().iter().zip(direct.values()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "pixel {i} served stale bits");
    }

    let snap = obs::drain();
    obs::disable();
    assert_eq!(snap.counter("serve.stale_discards"), 1, "one discard");
    assert_eq!(snap.counter("ingest.segments_created"), 2, "two batches");
    assert_eq!(snap.counter("ingest.segments_merged"), 2, "[8,8] absorbed");
    assert_eq!(snap.counter("ingest.merge_bytes"), 16 * 36);
    assert_eq!(snap.counter("ingest.points_appended"), 16);
}

#[test]
fn cas_loser_restamps_segment_without_rebuild() {
    // Two writers race the generation CAS. The loser must retry by
    // re-stamping the segment it already built onto the winner's stack
    // — `ingest.segments_created` stays at exactly one per batch. (The
    // old design re-ran the full O(n) rebuild on every retry; this
    // pins the fix.)
    let _g = LOCK.lock().unwrap();
    obs::reset();
    obs::enable();
    let s = Arc::new(server(2));
    let kernel = KernelKind::Quartic.with_bandwidth(10.0);
    let base = data::uniform_points(64, window(), 41);
    let layer = s
        .add_layer(base.clone(), window(), kernel, TAIL_EPS)
        .expect("layer");

    // Writer A (batch of 2) parks *after* building its segment, so
    // writer B (batch of 5) commits first and steals A's generation.
    let a_parked = Arc::new(AtomicBool::new(false));
    let b_done = Arc::new(AtomicBool::new(false));
    let (a_parked_h, b_done_h) = (Arc::clone(&a_parked), Arc::clone(&b_done));
    s.set_insert_hook(Some(Arc::new(move |_layer, batch_len| {
        if batch_len == 2 {
            a_parked_h.store(true, Ordering::SeqCst);
            while !b_done_h.load(Ordering::SeqCst) {
                thread::yield_now();
            }
        }
    })));

    let batch_a = vec![Point::new(20.0, 30.0), Point::new(22.0, 31.0)];
    let batch_b = scatter(5, 77);
    let writer_a = {
        let s = Arc::clone(&s);
        let batch_a = batch_a.clone();
        thread::spawn(move || s.insert_points(layer, &batch_a).expect("insert A"))
    };
    while !a_parked.load(Ordering::SeqCst) {
        thread::yield_now();
    }
    s.insert_points(layer, &batch_b).expect("insert B");
    b_done.store(true, Ordering::SeqCst);
    writer_a.join().expect("writer A panicked");
    s.set_insert_hook(None);

    // Neither batch triggers a merge (64 > 2·7, 5 > 2·2), so the CAS
    // conflict is the only interesting event in the table.
    let snap = obs::drain();
    obs::disable();
    assert_eq!(
        snap.counter("ingest.segments_created"),
        2,
        "the CAS loser re-indexed its batch instead of re-stamping it"
    );
    assert_eq!(snap.counter("ingest.segments_merged"), 0);
    assert_eq!(snap.counter("ingest.points_appended"), 7);
    assert_eq!(s.segment_count(layer).unwrap(), 3, "[64, 5, 2]");

    // Commit order is B then A; the monolithic oracle over that
    // sequence must match the served bits exactly.
    let mut pts = base;
    pts.extend_from_slice(&batch_b);
    pts.extend_from_slice(&batch_a);
    let tile = s.get_tile(layer, 1, 0, 0).expect("get");
    let direct = compute_tile_direct(
        &pts,
        &window(),
        kernel,
        TAIL_EPS,
        TILE_PX,
        TileCoord::new(1, 0, 0),
    );
    for (a, b) in tile.grid.values().iter().zip(direct.values()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
