//! Epidemic-monitoring scenario (the paper's COVID-19 deployments,
//! Fig. 4/5): spatiotemporal KDV across outbreak waves and the
//! spatiotemporal K-function surface of Fig. 6.
//!
//! Run with: `cargo run --release --example covid_outbreak`

use lsga::prelude::*;
use lsga::{data, kdv, kfunc, viz};
use std::time::Instant;

fn main() {
    // A Hong-Kong-like window (km) with two epidemic waves in different
    // districts, echoing Fig. 4's December-2020 vs January-2022 maps.
    let window = BBox::new(0.0, 0.0, 50.0, 40.0);
    let waves = [
        Wave {
            hotspot: Hotspot {
                center: Point::new(12.0, 28.0),
                sigma: 2.0,
                weight: 1.0,
            },
            t_peak: 20.0, // day 20: "first wave"
            t_sigma: 6.0,
        },
        Wave {
            hotspot: Hotspot {
                center: Point::new(38.0, 12.0),
                sigma: 1.5,
                weight: 1.4,
            },
            t_peak: 80.0, // day 80: "second wave", new district
            t_sigma: 5.0,
        },
        Wave {
            hotspot: Hotspot {
                center: Point::new(25.0, 20.0),
                sigma: 12.0, // community background
                weight: 0.6,
            },
            t_peak: 50.0,
            t_sigma: 30.0,
        },
    ];
    let cases = data::epidemic_waves(80_000, &waves, window, 2020);
    println!("cases: {}", cases.len());

    // --- STKDV: naive vs temporal-sweep sharing --------------------------
    let spec = GridSpec::new(window, 125, 100);
    let (t0, t1, nt) = (0.0, 100.0, 10);
    let ks = Epanechnikov::new(3.0);
    let kt = PolyKernel::new(KernelKind::Epanechnikov, 7.0).unwrap();

    let t = Instant::now();
    let cube = kdv::stkdv_sweep(&cases, spec, t0, t1, nt, ks, kt, 1e-9);
    println!(
        "STKDV sweep: {}x{}x{} cells in {:.1?}",
        spec.nx,
        spec.ny,
        nt,
        t.elapsed()
    );

    println!("\nhotspot drift across time slices (Fig. 4):");
    let out = std::path::Path::new("target/covid_outbreak");
    std::fs::create_dir_all(out).expect("create output dir");
    for it in 0..nt {
        let slice = cube.slice(it);
        let hot = slice.hotspot();
        println!(
            "  day {:>5.1}: hotspot at ({:5.1}, {:5.1}), peak density {:8.1}",
            cube.time(it),
            hot.x,
            hot.y,
            slice.max()
        );
        if it == 2 || it == 7 {
            let path = out.join(format!("wave_day{:.0}.png", cube.time(it)));
            viz::write_heatmap_png(&path, &slice, Colormap::Heat).expect("write png");
        }
    }
    println!("wrote target/covid_outbreak/wave_day*.png");

    // --- Spatiotemporal K-function surface (Fig. 6) ----------------------
    let sub: Vec<TimedPoint> = cases.iter().step_by(20).copied().collect();
    let ss: Vec<f64> = (1..=5).map(|i| i as f64).collect();
    let ts: Vec<f64> = (1..=5).map(|i| i as f64 * 5.0).collect();
    let t = Instant::now();
    let surface = kfunc::st_k_plot(&sub, window, t0, t1, &ss, &ts, 10, 7, KConfig::default());
    println!(
        "\nspatiotemporal K surface over {} cases in {:.1?}:",
        sub.len(),
        t.elapsed()
    );
    print!("        ");
    for tt in &ts {
        print!("  t<={tt:>5.0}");
    }
    println!();
    for (a, s) in ss.iter().enumerate() {
        print!("  s<={s:>3.0} ");
        for b in 0..ts.len() {
            let obs = surface.at(a, b);
            let hot = obs > surface.upper[a * ts.len() + b];
            print!("{:>8}{}", obs, if hot { "*" } else { " " });
        }
        println!();
    }
    println!("(* = exceeds the CSR envelope: meaningful space-time clustering)");
    let clustered = surface.clustered_cells();
    assert!(!clustered.is_empty());
    println!(
        "clustered at {} of {} threshold combinations",
        clustered.len(),
        ss.len() * ts.len()
    );
}
