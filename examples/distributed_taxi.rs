//! Large-scale scenario (the paper's NYC-taxi motivation): one million
//! pick-up-like points on the simulated distributed cluster — scaling,
//! partitioning strategy, and communication accounting for both KDV and
//! the K-function.
//!
//! Run with: `cargo run --release --example distributed_taxi`

use lsga::dist::{self, PartitionStrategy};
use lsga::prelude::*;
use lsga::{data, kfunc};
use std::time::Instant;

fn main() {
    let window = BBox::new(0.0, 0.0, 40_000.0, 40_000.0); // 40 km city
    let n = 1_000_000;
    let t = Instant::now();
    let points = data::taxi_like(n, window, 0.7, 7);
    println!("generated {n} taxi-like pickups in {:.1?}", t.elapsed());

    let spec = GridSpec::new(window, 256, 256);
    let kernel = Epanechnikov::new(400.0);
    let hw = std::thread::available_parallelism().map_or(8, |p| p.get());
    let mut worker_counts = vec![1usize, 2, 4, hw];
    worker_counts.sort_unstable();
    worker_counts.dedup();

    // --- KDV scaling over workers ----------------------------------------
    println!("\ndistributed KDV ({}x{} px, b = 400 m):", spec.nx, spec.ny);
    println!("  workers  strategy      wall      max-worker  imbalance  halo-pts    MB shipped");
    let mut reference: Option<DensityGrid> = None;
    for &workers in &worker_counts {
        for strategy in [
            PartitionStrategy::UniformBands,
            PartitionStrategy::BalancedKd,
        ] {
            let (grid, m) = dist::distributed_kdv(&points, spec, kernel, 1e-9, workers, strategy);
            if let Some(r) = &reference {
                assert!(grid.linf_diff(r) < 1e-9, "distributed result drifted");
            } else {
                reference = Some(grid.clone());
            }
            println!(
                "  {workers:>7}  {:<12} {:>9.1?}  {:>10.1?}  {:>9.2}  {:>8}  {:>10.1}",
                format!("{strategy:?}"),
                m.wall,
                m.compute_max(),
                m.load_imbalance(),
                m.replicated_points(),
                m.total_bytes() as f64 / 1e6
            );
        }
    }
    println!(
        "hotspot: {:?}",
        reference.expect("at least one run").hotspot()
    );

    // --- K-function scaling ------------------------------------------------
    let s = 250.0;
    println!("\ndistributed K-function (s = {s} m):");
    println!("  workers  strategy      wall        count");
    let mut want: Option<u64> = None;
    let mut k_workers = vec![1usize, 4, hw];
    k_workers.sort_unstable();
    k_workers.dedup();
    for &workers in &k_workers {
        let (k, m) = dist::distributed_k(
            &points,
            s,
            KConfig::default(),
            workers,
            PartitionStrategy::BalancedKd,
        );
        if let Some(w) = want {
            assert_eq!(k, w);
        } else {
            want = Some(k);
        }
        println!("  {workers:>7}  BalancedKd   {:>9.1?}  {k}", m.wall);
    }

    // Sanity anchor: single-node histogram agrees.
    let t = Instant::now();
    let single = kfunc::grid_k(&points, s, KConfig::default());
    println!(
        "  single-node grid_k: {:.1?} -> {single} (match: {})",
        t.elapsed(),
        single == want.unwrap()
    );
}
