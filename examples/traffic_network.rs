//! Traffic-safety scenario (the paper's Fig. 3 argument): accidents on a
//! road network analyzed with NKDV vs planar KDV and the network
//! K-function vs the planar K-function.
//!
//! Run with: `cargo run --release --example traffic_network`

use lsga::prelude::*;
use lsga::{data, kdv, kfunc, network, viz};
use std::time::Instant;

fn main() {
    // A Manhattan-like grid: 20x15 intersections, 150 m blocks.
    let net = network::grid_network(20, 15, 150.0);
    println!(
        "road network: {} intersections, {} segments, {:.1} km",
        net.vertex_count(),
        net.edge_count(),
        net.total_length() / 1000.0
    );

    // Accident black spots: clustered along the network.
    let events = data::clustered_on_network(&net, 8, 250, 120.0, 3);
    println!("accidents: {}", events.len());

    // --- NKDV: naive (per lixel) vs forward (per event) ------------------
    let lixels = Lixels::build(&net, 25.0);
    let kernel = Quartic::new(300.0);
    println!("lixels: {}", lixels.len());

    let t = Instant::now();
    let forward = kdv::nkdv_forward(&net, &lixels, &events, kernel).unwrap();
    let t_fwd = t.elapsed();
    let t = Instant::now();
    let naive = kdv::nkdv_naive(&net, &lixels, &events, kernel).unwrap();
    let t_naive = t.elapsed();
    println!(
        "NKDV: naive {t_naive:.1?}  vs  forward {t_fwd:.1?}  (L_inf diff {:.2e})",
        naive.linf_diff(&forward)
    );
    let hot = lixels.all()[forward.argmax()];
    let hot_pt = net.point_on_edge(hot.edge, hot.center_offset());
    println!("hottest road segment at ({:.0}, {:.0})", hot_pt.x, hot_pt.y);

    // Render the network heatmap (the NKDV analogue of Fig. 1).
    let out = std::path::Path::new("target/traffic_network");
    std::fs::create_dir_all(out).expect("create output dir");
    let svg = viz::network_density_svg(&net, &lixels, &forward, Colormap::Heat, 900, 640);
    std::fs::write(out.join("nkdv.svg"), svg).expect("write svg");
    println!("wrote target/traffic_network/nkdv.svg");

    // --- Euclidean vs network density (the Fig. 3 overestimation) --------
    let planar_events: Vec<Point> = events.iter().map(|e| e.point(&net)).collect();
    let spec = GridSpec::with_width(net.bbox().inflate(50.0), 120);
    let planar = kdv::grid_pruned_kdv(&planar_events, spec, kernel, 1e-9);
    // Compare the density planar KDV assigns to each lixel midpoint with
    // the network density: the planar value is an upper bound.
    let mut over = 0usize;
    let mids = lixels.midpoints(&net);
    for (i, mid) in mids.iter().enumerate() {
        let (ix, iy) = spec.pixel_of(mid);
        if planar.at(ix, iy) > forward.values()[i] + 1e-9 {
            over += 1;
        }
    }
    println!(
        "planar KDV overestimates density on {over}/{} lixels ({:.0}%)",
        mids.len(),
        100.0 * over as f64 / mids.len() as f64
    );

    // --- Network K-function: naive vs shared, plus the envelope ----------
    let thresholds: Vec<f64> = (1..=10).map(|i| i as f64 * 100.0).collect();
    let cfg = KConfig::default();
    let t = Instant::now();
    let shared = kfunc::network_k_shared(&net, &events, &thresholds, cfg);
    let t_shared = t.elapsed();
    let t = Instant::now();
    let naive_k = kfunc::network_k_naive(&net, &events, &thresholds, cfg);
    let t_naive = t.elapsed();
    assert_eq!(shared, naive_k);
    println!("\nnetwork K-function: naive {t_naive:.1?}  vs  edge-shared {t_shared:.1?} (equal)");

    let planar_k = kfunc::histogram_k_all(&planar_events, &thresholds, cfg);
    let plot = kfunc::network_k_plot(&net, &events, &thresholds, 15, 5, cfg);
    println!("\n  s(m)   K_net       K_planar    envelope[L,U]      verdict");
    for (i, s) in thresholds.iter().enumerate() {
        let verdict = if plot.observed[i] > plot.upper[i] {
            "CLUSTERED"
        } else if plot.observed[i] < plot.lower[i] {
            "dispersed"
        } else {
            "random"
        };
        println!(
            "{s:6.0}  {:>9}  {:>10}  [{:>8}, {:>8}]  {verdict}",
            plot.observed[i], planar_k[i], plot.lower[i], plot.upper[i]
        );
    }
    assert!(!plot.clustered_thresholds().is_empty());
}
