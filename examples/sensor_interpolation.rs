//! Environmental-monitoring scenario (the paper's ecology motivation,
//! air-pollution refs): sparse sensor readings interpolated with IDW and
//! ordinary kriging, with cross-validated error comparison.
//!
//! Run with: `cargo run --release --example sensor_interpolation`

use lsga::prelude::*;
use lsga::{data, interp, viz};
use std::time::Instant;

/// The "true" pollution surface the sensors sample: two emission plumes
/// over a regional gradient.
fn pollution(p: &Point) -> f64 {
    let plume1 = 60.0 * (-p.dist_sq(&Point::new(30.0, 60.0)) / 400.0).exp();
    let plume2 = 40.0 * (-p.dist_sq(&Point::new(70.0, 25.0)) / 900.0).exp();
    12.0 + 0.05 * p.x + plume1 + plume2
}

fn main() {
    let window = BBox::new(0.0, 0.0, 100.0, 100.0);
    // 300 monitoring stations at random sites.
    let sites = data::uniform_points(300, window, 99);
    let readings: Vec<(Point, f64)> = sites.iter().map(|p| (*p, pollution(p))).collect();
    println!("sensors: {}", readings.len());

    let spec = GridSpec::new(window, 100, 100);
    let rmse = |grid: &DensityGrid| -> f64 {
        let mut acc = 0.0;
        for (_, _, q, v) in grid.iter_pixels() {
            let e = v - pollution(&q);
            acc += e * e;
        }
        (acc / grid.spec().len() as f64).sqrt()
    };

    // --- IDW: naive O(XYn) vs kNN-accelerated -----------------------------
    let t = Instant::now();
    let idw_full = interp::idw_naive(&readings, spec, 2.0);
    let t_naive = t.elapsed();
    let t = Instant::now();
    let idw_local = interp::idw_knn(&readings, spec, 2.0, 12);
    let t_knn = t.elapsed();
    println!("\nIDW:");
    println!(
        "  naive global : {t_naive:>8.1?}   RMSE {:.2}",
        rmse(&idw_full)
    );
    println!(
        "  kNN local k=12: {t_knn:>8.1?}   RMSE {:.2}",
        rmse(&idw_local)
    );

    // --- Kriging: variogram fit + prediction ------------------------------
    let t = Instant::now();
    let bins = interp::empirical_variogram(&readings, 60.0, 15);
    println!("\nempirical variogram ({} bins):", bins.len());
    for b in bins.iter().step_by(3) {
        println!(
            "  lag {:>5.1}: gamma = {:>7.1} ({} pairs)",
            b.lag, b.gamma, b.pairs
        );
    }
    let mut best: Option<interp::VariogramModel> = None;
    for kind in [
        interp::VariogramModelKind::Spherical,
        interp::VariogramModelKind::Exponential,
        interp::VariogramModelKind::Gaussian,
    ] {
        let m = interp::fit_variogram(&bins, kind).expect("enough bins");
        let sse: f64 = bins
            .iter()
            .map(|b| {
                let e = m.gamma(b.lag) - b.gamma;
                b.pairs as f64 * e * e
            })
            .sum();
        println!(
            "  fit {:<11}: nugget {:>6.1}, sill {:>7.1}, range {:>5.1}, weighted SSE {:.3e}",
            m.kind.name(),
            m.nugget,
            m.sill(),
            m.range,
            sse
        );
        if best.is_none() {
            best = Some(m);
        }
    }
    let model = best.expect("fitted at least one model");
    let kriged = interp::ordinary_kriging(&readings, spec, &model, 16).expect("kriging solve");
    println!(
        "\nkriging ({} model, 16-NN): RMSE {:.2} in {:.1?}",
        model.kind.name(),
        rmse(&kriged.prediction),
        t.elapsed()
    );
    println!(
        "kriging variance: min {:.2}, max {:.2} (uncertainty map)",
        kriged.variance.min(),
        kriged.variance.max()
    );

    // --- Render the three surfaces -----------------------------------------
    let out = std::path::Path::new("target/sensor_interpolation");
    std::fs::create_dir_all(out).expect("create output dir");
    viz::write_heatmap_png(out.join("idw.png"), &idw_local, Colormap::Viridis).unwrap();
    viz::write_heatmap_png(
        out.join("kriging.png"),
        &kriged.prediction,
        Colormap::Viridis,
    )
    .unwrap();
    viz::write_heatmap_png(out.join("variance.png"), &kriged.variance, Colormap::Gray).unwrap();
    println!("wrote target/sensor_interpolation/{{idw,kriging,variance}}.png");
}
