//! Quickstart: generate a clustered dataset, check significance with a
//! K-function plot, rasterize a KDV heatmap, and render both.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! `LSGA_EXAMPLE_N` overrides the dataset size (default 50 000) — CI
//! runs the example end-to-end on a tiny n to keep it honest without
//! burning minutes.

use lsga::prelude::*;
use lsga::{data, kdv, kfunc, viz};

fn example_n(default: usize) -> usize {
    std::env::var("LSGA_EXAMPLE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    // A city-scale window with two crime-like hotspots over background.
    let window = BBox::new(0.0, 0.0, 1000.0, 800.0);
    let hotspots = [
        Hotspot {
            center: Point::new(300.0, 250.0),
            sigma: 40.0,
            weight: 2.0,
        },
        Hotspot {
            center: Point::new(700.0, 550.0),
            sigma: 60.0,
            weight: 1.0,
        },
        Hotspot {
            center: Point::new(500.0, 400.0),
            sigma: 300.0, // diffuse background
            weight: 1.0,
        },
    ];
    let points = data::gaussian_mixture(example_n(50_000), &hotspots, window, 42);
    println!("generated {} points", points.len());

    // 1. Is the clustering statistically meaningful? (Definition 3)
    let thresholds: Vec<f64> = (1..=12).map(|i| i as f64 * 10.0).collect();
    let plot = kfunc::k_function_plot(
        &points,
        window,
        &thresholds,
        20,
        7,
        KConfig::default(),
        std::thread::available_parallelism().map_or(4, |p| p.get()),
    );
    println!("\n s      K_P(s)        L(s)          U(s)         verdict");
    for (i, s) in plot.thresholds.iter().enumerate() {
        println!(
            "{s:5.0}  {:>12}  {:>12}  {:>12}  {:?}",
            plot.observed[i],
            plot.lower[i],
            plot.upper[i],
            plot.regimes()[i]
        );
    }
    let clustered = plot.clustered_thresholds();
    assert!(!clustered.is_empty(), "expected meaningful clustering");

    // 2. Use a clustered scale as the KDV bandwidth (paper Section 2.1).
    let bandwidth = clustered[clustered.len() / 2];
    println!("\nusing bandwidth from K-function plot: {bandwidth}");
    let spec = GridSpec::new(window, 512, 410);
    let kernel = PolyKernel::new(KernelKind::Quartic, bandwidth).unwrap();
    let t0 = std::time::Instant::now();
    let density = kdv::slam_kdv(&points, spec, kernel);
    println!(
        "SLAM KDV over {}x{} pixels in {:.1?}; hotspot at {:?}",
        spec.nx,
        spec.ny,
        t0.elapsed(),
        density.hotspot()
    );

    // 3. Render: heatmap PNG (Fig. 1) and K-function plot SVG (Fig. 2).
    let out = std::path::Path::new("target/quickstart");
    std::fs::create_dir_all(out).expect("create output dir");
    viz::write_heatmap_png(out.join("heatmap.png"), &density, Colormap::Heat).expect("write png");
    std::fs::write(out.join("kplot.svg"), viz::k_plot_svg(&plot, 640, 480)).expect("write svg");
    println!("wrote target/quickstart/heatmap.png and kplot.svg");

    // Bonus: a terminal glimpse of the density surface.
    let coarse = GridSpec::new(window, 64, 24);
    let preview = kdv::grid_pruned_kdv(&points, coarse, kernel, 1e-9);
    println!("\n{}", viz::ascii_heatmap(&preview));
}
