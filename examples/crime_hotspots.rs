//! Crime-analysis scenario (the paper's criminology motivation):
//! a Chicago-crime-like synthetic dataset analyzed with the full
//! hotspot-detection + correlation-analysis toolbox — KDV methods
//! compared, Moran's I / General G significance, DBSCAN profiling.
//!
//! Run with: `cargo run --release --example crime_hotspots`
//!
//! `LSGA_EXAMPLE_N` overrides the incident count (default 200 000) —
//! CI runs the example end-to-end on a tiny n to keep it honest
//! without burning minutes.

use lsga::prelude::*;
use lsga::stats::{self, areal, SpatialWeights};
use lsga::{data, kdv};
use std::time::Instant;

fn main() {
    let n: usize = std::env::var("LSGA_EXAMPLE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let window = BBox::new(0.0, 0.0, 2000.0, 1500.0);
    let points = data::taxi_like(n, window, 0.55, 11);
    println!("incidents: {}", points.len());

    // --- KDV method comparison on one grid ------------------------------
    let spec = GridSpec::new(window, 320, 240);
    let b = 50.0;
    let quartic = Quartic::new(b);
    let poly = PolyKernel::new(KernelKind::Quartic, b).unwrap();

    let t = Instant::now();
    let pruned = kdv::grid_pruned_kdv(&points, spec, quartic, 1e-9);
    let t_pruned = t.elapsed();

    let t = Instant::now();
    let slam = kdv::slam_kdv(&points, spec, poly);
    let t_slam = t.elapsed();

    let t = Instant::now();
    let sampled = kdv::sampling_kdv(&points, spec, quartic, (n / 10).max(1_000), 3);
    let t_sample = t.elapsed();

    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let t = Instant::now();
    let parallel = kdv::parallel_kdv(&points, spec, quartic, 1e-9, threads);
    let t_par = t.elapsed();

    println!("\nKDV methods ({}x{} px, b = {b}):", spec.nx, spec.ny);
    println!("  grid-pruned exact : {t_pruned:>10.1?}");
    println!(
        "  SLAM sweep (exact): {t_slam:>10.1?}   L_inf vs pruned {:.2e}",
        slam.linf_diff(&pruned)
    );
    println!(
        "  sampling m=20k    : {t_sample:>10.1?}   L_inf vs pruned {:.3}",
        sampled.linf_diff(&pruned)
    );
    println!(
        "  parallel x{threads:<2}      : {t_par:>10.1?}   identical: {}",
        parallel.values() == pruned.values()
    );
    println!("  hotspot: {:?}", pruned.hotspot());

    // --- Correlation analysis on quadrat counts -------------------------
    let coarse = GridSpec::new(window, 25, 19);
    let counts = areal::quadrat_counts(&points, coarse);
    let centers = areal::cell_centers(&coarse);
    let w = SpatialWeights::distance_band(&centers, 90.0);
    let moran = stats::morans_i(counts.values(), &w, 199, 5).expect("valid lattice");
    let g = stats::general_g(counts.values(), &w, 199, 6).expect("valid lattice");
    println!("\ncorrelation analysis over {} quadrats:", coarse.len());
    println!(
        "  Moran's I = {:.3} (E = {:.3}), z = {:.1}, p_perm = {:.4}",
        moran.i,
        moran.expected,
        moran.z_norm,
        moran.p_perm.unwrap()
    );
    println!(
        "  General G = {:.5} (E = {:.5}), z = {:.1}, p_perm = {:.4}",
        g.g, g.expected, g.z, g.p_perm
    );

    // --- Hotspot profiling with DBSCAN ----------------------------------
    // Cluster the densest 5% of incidents to outline hotspot shapes.
    let cut = {
        let mut v: Vec<f64> = pruned.values().to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        v[(v.len() as f64 * 0.95) as usize]
    };
    let hot_points: Vec<Point> = points
        .iter()
        .filter(|p| {
            let (ix, iy) = spec.pixel_of(p);
            pruned.at(ix, iy) >= cut
        })
        .copied()
        .collect();
    let t = Instant::now();
    let clusters = stats::dbscan(&hot_points, 25.0, 20);
    println!(
        "\nDBSCAN over {} hot incidents: {} hotspot clusters in {:.1?}",
        hot_points.len(),
        clusters.n_clusters,
        t.elapsed()
    );
}
