//! Advanced-analysis capstone: the implemented future-work items and
//! extensions working together on one scenario — adaptive KDV, the pair
//! correlation function, cross-type K, local Gi*/LISA hot-spot maps,
//! equal-split NKDV, the quadrat chi-square test, and intensity
//! resampling by thinning.
//!
//! Run with: `cargo run --release --example advanced_analysis`

use lsga::prelude::*;
use lsga::stats::{self, areal, SpatialWeights};
use lsga::{data, kdv, kfunc, network};
use std::time::Instant;

fn main() {
    let window = BBox::new(0.0, 0.0, 1000.0, 1000.0);

    // Two event types: burglaries cluster around bars (paired), plus
    // diffuse background for both.
    let bars = data::uniform_points(300, window, 1);
    let mut burglaries: Vec<Point> = bars
        .iter()
        .flat_map(|b| (0..4).map(move |k| Point::new(b.x + 3.0 + k as f64, b.y + 2.0)))
        .collect();
    burglaries.extend(data::uniform_points(800, window, 2));
    println!("bars: {}, burglaries: {}", bars.len(), burglaries.len());

    // --- Quadrat chi-square: is the burglary pattern CSR? ----------------
    let spec20 = GridSpec::new(window, 20, 20);
    let chi = stats::quadrat_chi2_test(&burglaries, spec20).expect("non-degenerate");
    println!(
        "\nquadrat chi2 = {:.0} (dof {}), z = {:.1}, p = {:.4} -> {}",
        chi.chi2,
        chi.dof,
        chi.z,
        chi.p,
        if chi.z > 1.96 {
            "clustered"
        } else {
            "not clustered"
        }
    );

    // --- Pair correlation function: at which exact scales? ---------------
    let pcf = kfunc::pair_correlation(&burglaries, window, 50.0, 10);
    println!("\npair correlation g(r) (1 = CSR):");
    for bin in &pcf {
        let bar_len = (bin.g * 20.0).min(60.0) as usize;
        println!(
            "  r = {:>5.1}: g = {:>6.2} {}",
            bin.r,
            bin.g,
            "#".repeat(bar_len)
        );
    }

    // --- Cross-K: do burglaries cluster around bars? ----------------------
    let ts: Vec<f64> = (1..=6).map(|i| i as f64 * 5.0).collect();
    let cross = kfunc::cross_k_plot(&bars, &burglaries, &ts, 20, 7, KConfig::default());
    println!("\ncross-K (bars vs burglaries, random-labelling envelope):");
    for (i, s) in cross.thresholds.iter().enumerate() {
        let verdict = if cross.observed[i] > cross.upper[i] {
            "ATTRACTION"
        } else if cross.observed[i] < cross.lower[i] {
            "repulsion"
        } else {
            "independent"
        };
        println!(
            "  s = {s:>4.0}: observed {:>7} envelope [{:>7}, {:>7}] {verdict}",
            cross.observed[i], cross.lower[i], cross.upper[i]
        );
    }
    assert!(!cross.attraction_thresholds().is_empty());

    // --- Adaptive KDV: sharpen hotspots, smooth the periphery -------------
    let spec = GridSpec::new(window, 200, 200);
    let t = Instant::now();
    let fixed = kdv::grid_pruned_kdv(&burglaries, spec, Quartic::new(30.0), 1e-9);
    let t_fixed = t.elapsed();
    let t = Instant::now();
    let adaptive = kdv::adaptive_kdv(&burglaries, spec, KernelKind::Quartic, 30.0, 0.5);
    let t_adaptive = t.elapsed();
    println!(
        "\nKDV peaks: fixed b=30 -> {:.1} ({t_fixed:.1?}); adaptive alpha=0.5 -> {:.1} ({t_adaptive:.1?})",
        fixed.max(),
        adaptive.max()
    );

    // --- Local Gi*: which quadrats are significant hot spots? -------------
    let counts = areal::quadrat_counts(&burglaries, spec20);
    let centers = areal::cell_centers(&spec20);
    let w = SpatialWeights::distance_band(&centers, 75.0);
    let gi = stats::local_gi_star(counts.values(), &w);
    let hot = gi.iter().filter(|r| r.value > 1.96).count();
    let lisa = stats::local_morans_i(counts.values(), &w, 99, 3).unwrap();
    let sig = lisa.iter().filter(|r| r.p < 0.05).count();
    println!("local stats: {hot} Gi* hot quadrats, {sig} significant LISA quadrats");

    // --- Thinning: resample a synthetic dataset from the estimated map ----
    let resampled = data::thinning_sample(&fixed, 2000, 11);
    let chi2_resampled = stats::quadrat_chi2_test(&resampled, spec20).unwrap();
    println!(
        "thinning resample: {} synthetic points, quadrat z = {:.1} (structure preserved)",
        resampled.len(),
        chi2_resampled.z
    );
    assert!(chi2_resampled.z > 1.96);

    // --- Equal-split NKDV on a small road network --------------------------
    let net = network::grid_network(8, 8, 120.0);
    let idx = network::SegmentIndex::build(&net, 60.0);
    let events: Vec<EdgePosition> = burglaries
        .iter()
        .step_by(4)
        .filter_map(|p| idx.snap(&net, p).map(|(pos, _)| pos))
        .collect();
    let lixels = Lixels::build(&net, 30.0);
    let simple = kdv::nkdv_forward(&net, &lixels, &events, Quartic::new(200.0)).unwrap();
    let esd = kdv::nkdv_equal_split(&net, &lixels, &events, Quartic::new(200.0));
    // Length-weighted total mass: the equal-split variant does not
    // inflate at junctions.
    let mass = |d: &kdv::NetworkDensity| -> f64 {
        d.values()
            .iter()
            .zip(lixels.all())
            .map(|(v, l)| v * l.length())
            .sum()
    };
    println!(
        "\nNKDV mass over the network: simple {:.0} vs equal-split {:.0} \
         (junction inflation removed: {:.0}%)",
        mass(&simple),
        mass(&esd),
        100.0 * (mass(&simple) - mass(&esd)) / mass(&simple)
    );
}
